//! [`EpochRecorder`] — an [`ObsProbe`] that aggregates the event stream
//! into per-epoch time series and serializes them to JSON.
//!
//! The recorder answers the questions end-of-run aggregates cannot: how the
//! SSL class populations drift, which core spills into which, when AVGCC
//! regranularizes and where the QoS ratio throttles the mechanism. Attach
//! it with [`CmpSystem::with_probe`](crate::CmpSystem::with_probe) (pass
//! `&mut recorder` to keep ownership), run, then call
//! [`finish`](EpochRecorder::finish) and [`to_json`](EpochRecorder::to_json).

use cmp_cache::{ObsEvent, ObsProbe, PolicySnapshot};
use cmp_json::Value;

/// Per-epoch aggregated event counts (everything indexed by core).
#[derive(Clone, PartialEq, Debug)]
pub struct EpochCounts {
    /// Local L2 hits.
    pub local_hits: Vec<u64>,
    /// Local L2 misses (before the chip-wide lookup).
    pub misses: Vec<u64>,
    /// Misses served by a peer cache.
    pub remote_hits: Vec<u64>,
    /// Misses served by memory.
    pub mem_fetches: Vec<u64>,
    /// L2 fills of any kind.
    pub fills: Vec<u64>,
    /// Valid lines displaced by fills.
    pub evictions: Vec<u64>,
    /// Dirty lines written back to memory.
    pub writebacks: Vec<u64>,
    /// `spill_matrix[from][to]` — spills from core `from` into core `to`.
    pub spill_matrix: Vec<Vec<u64>>,
    /// Spiller sets that found no receiver (capacity-problem signals).
    pub spills_no_candidate: Vec<u64>,
    /// §3.2 swaps, attributed to the requester.
    pub swaps: Vec<u64>,
    /// Insertion-policy switches (MRU ↔ BIP/SABIP), either direction.
    pub insertion_switches: Vec<u64>,
    /// AVGCC regranularizations.
    pub regranularizations: Vec<u64>,
    /// QoS ratio recomputations.
    pub qos_updates: Vec<u64>,
}

impl EpochCounts {
    fn new(cores: usize) -> Self {
        EpochCounts {
            local_hits: vec![0; cores],
            misses: vec![0; cores],
            remote_hits: vec![0; cores],
            mem_fetches: vec![0; cores],
            fills: vec![0; cores],
            evictions: vec![0; cores],
            writebacks: vec![0; cores],
            spill_matrix: vec![vec![0; cores]; cores],
            spills_no_candidate: vec![0; cores],
            swaps: vec![0; cores],
            insertion_switches: vec![0; cores],
            regranularizations: vec![0; cores],
            qos_updates: vec![0; cores],
        }
    }

    fn add(&mut self, ev: ObsEvent) {
        match ev {
            ObsEvent::LocalHit { core, .. } => self.local_hits[core.index()] += 1,
            ObsEvent::Miss { core, .. } => self.misses[core.index()] += 1,
            ObsEvent::RemoteHit { requester, .. } => self.remote_hits[requester.index()] += 1,
            ObsEvent::MemFetch { core, .. } => self.mem_fetches[core.index()] += 1,
            ObsEvent::Fill { core, .. } => self.fills[core.index()] += 1,
            ObsEvent::Eviction { core, .. } => self.evictions[core.index()] += 1,
            ObsEvent::Writeback { core } => self.writebacks[core.index()] += 1,
            ObsEvent::Spill { from, to, .. } => self.spill_matrix[from.index()][to.index()] += 1,
            ObsEvent::SpillNoCandidate { from, .. } => self.spills_no_candidate[from.index()] += 1,
            ObsEvent::Swap { requester, .. } => self.swaps[requester.index()] += 1,
            ObsEvent::InsertionModeSwitch { core, .. } => {
                self.insertion_switches[core.index()] += 1
            }
            ObsEvent::Regranularized { core, .. } => self.regranularizations[core.index()] += 1,
            ObsEvent::QosRatioUpdate { core, .. } => self.qos_updates[core.index()] += 1,
        }
    }

    /// Total spills out of all cores in this epoch.
    pub fn spills(&self) -> u64 {
        self.spill_matrix.iter().flatten().sum()
    }

    /// Adds every counter of `self` into `total` (for aggregating epochs
    /// into coarser windows).
    pub fn merge_into(&self, total: &mut EpochCounts) {
        let zip_add = |a: &mut Vec<u64>, b: &[u64]| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        };
        zip_add(&mut total.local_hits, &self.local_hits);
        zip_add(&mut total.misses, &self.misses);
        zip_add(&mut total.remote_hits, &self.remote_hits);
        zip_add(&mut total.mem_fetches, &self.mem_fetches);
        zip_add(&mut total.fills, &self.fills);
        zip_add(&mut total.evictions, &self.evictions);
        zip_add(&mut total.writebacks, &self.writebacks);
        zip_add(&mut total.spills_no_candidate, &self.spills_no_candidate);
        zip_add(&mut total.swaps, &self.swaps);
        zip_add(&mut total.insertion_switches, &self.insertion_switches);
        zip_add(&mut total.regranularizations, &self.regranularizations);
        zip_add(&mut total.qos_updates, &self.qos_updates);
        for (row, trow) in self.spill_matrix.iter().zip(&mut total.spill_matrix) {
            zip_add(trow, row);
        }
    }
}

/// One closed observation epoch.
#[derive(Clone, PartialEq, Debug)]
pub struct Epoch {
    /// Epoch index (0-based). The trailing partial epoch flushed by
    /// [`EpochRecorder::finish`] reuses the next index with no snapshot.
    pub index: u64,
    /// Events aggregated over this epoch.
    pub counts: EpochCounts,
    /// Policy snapshot taken at the epoch boundary (`None` for the final
    /// partial epoch).
    pub snapshot: Option<PolicySnapshot>,
}

/// A probe that folds the event stream into per-epoch time series.
#[derive(Clone, PartialEq, Debug)]
pub struct EpochRecorder {
    cores: usize,
    current: EpochCounts,
    current_index: u64,
    current_events: u64,
    epochs: Vec<Epoch>,
    totals: EpochCounts,
    finished: bool,
}

impl EpochRecorder {
    /// A recorder for a `cores`-core system.
    pub fn new(cores: usize) -> Self {
        EpochRecorder {
            cores,
            current: EpochCounts::new(cores),
            current_index: 0,
            current_events: 0,
            epochs: Vec::new(),
            totals: EpochCounts::new(cores),
            finished: false,
        }
    }

    /// Closes the trailing partial epoch, if it saw any events. Call after
    /// the run completes and before serializing.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if self.current_events > 0 {
            let counts = std::mem::replace(&mut self.current, EpochCounts::new(self.cores));
            self.epochs.push(Epoch {
                index: self.current_index,
                counts,
                snapshot: None,
            });
            self.current_events = 0;
        }
    }

    /// The closed epochs, in order.
    pub fn epochs(&self) -> &[Epoch] {
        &self.epochs
    }

    /// Event counts summed over the whole run (closed epochs plus the
    /// still-open one) — the side that reconciles against
    /// [`CmpSystem::lifetime_result`](crate::CmpSystem::lifetime_result).
    pub fn totals(&self) -> &EpochCounts {
        &self.totals
    }

    /// Serializes the recording: run-level totals plus the per-epoch time
    /// series (counts and, where taken, the policy snapshot).
    pub fn to_json(&self) -> Value {
        let epochs: Vec<Value> = self.epochs.iter().map(epoch_json).collect();
        Value::object()
            .insert("cores", self.cores as f64)
            .insert("epochs_recorded", self.epochs.len() as f64)
            .insert("totals", counts_json(&self.totals))
            .insert("epochs", epochs)
    }
}

impl ObsProbe for EpochRecorder {
    fn record(&mut self, event: ObsEvent) {
        self.current.add(event);
        self.totals.add(event);
        self.current_events += 1;
    }

    fn on_epoch(&mut self, index: u64, snapshot: &PolicySnapshot) {
        let counts = std::mem::replace(&mut self.current, EpochCounts::new(self.cores));
        self.epochs.push(Epoch {
            index,
            counts,
            snapshot: Some(snapshot.clone()),
        });
        self.current_index = index + 1;
        self.current_events = 0;
    }
}

fn u64s(xs: &[u64]) -> Value {
    Value::Array(xs.iter().map(|&x| Value::Number(x as f64)).collect())
}

fn counts_json(c: &EpochCounts) -> Value {
    let matrix: Vec<Value> = c.spill_matrix.iter().map(|row| u64s(row)).collect();
    Value::object()
        .insert("local_hits", u64s(&c.local_hits))
        .insert("misses", u64s(&c.misses))
        .insert("remote_hits", u64s(&c.remote_hits))
        .insert("mem_fetches", u64s(&c.mem_fetches))
        .insert("fills", u64s(&c.fills))
        .insert("evictions", u64s(&c.evictions))
        .insert("writebacks", u64s(&c.writebacks))
        .insert("spill_matrix", matrix)
        .insert("spills_no_candidate", u64s(&c.spills_no_candidate))
        .insert("swaps", u64s(&c.swaps))
        .insert("insertion_switches", u64s(&c.insertion_switches))
        .insert("regranularizations", u64s(&c.regranularizations))
        .insert("qos_updates", u64s(&c.qos_updates))
}

/// Serializes a [`PolicySnapshot`], writing only the fields the policy
/// filled in.
pub fn snapshot_json(s: &PolicySnapshot) -> Value {
    let mut v = Value::object().insert("policy", s.policy.as_str());
    let opt = |v: Value, key: &str, x: Option<u64>| match x {
        Some(x) => v.insert(key, x as f64),
        None => v,
    };
    v = opt(v, "capacity_activations", s.capacity_activations);
    v = opt(v, "granularity_changes", s.granularity_changes);
    v = opt(v, "repartitions", s.repartitions);
    v = opt(v, "spills_refused", s.spills_refused);
    if let Some(ok) = s.ab_consistent {
        v = v.insert("ab_consistent", ok);
    }
    let per_core: Vec<Value> = s
        .per_core
        .iter()
        .map(|c| {
            let mut cv = Value::object().insert("core", c.core.index() as f64);
            if let Some(h) = c.roles {
                cv = cv.insert(
                    "roles",
                    Value::object()
                        .insert("receiver", h.receiver as f64)
                        .insert("neutral", h.neutral as f64)
                        .insert("spiller", h.spiller as f64),
                );
            }
            if let Some(x) = c.sabip_sets {
                cv = cv.insert("sabip_sets", x as f64);
            }
            if let Some(x) = c.granularity_log2 {
                cv = cv.insert("granularity_log2", x as f64);
            }
            if let Some(x) = c.counters_in_use {
                cv = cv.insert("counters_in_use", x as f64);
            }
            if let Some(x) = c.qos_ratio {
                cv = cv.insert("qos_ratio", x);
            }
            if let Some(x) = c.psel {
                cv = cv.insert("psel", x as f64);
            }
            if let Some(m) = c.follower_mode {
                cv = cv.insert("follower_mode", m);
            }
            if let Some(x) = c.private_quota {
                cv = cv.insert("private_quota", x as f64);
            }
            if let Some(x) = c.shared_quota {
                cv = cv.insert("shared_quota", x as f64);
            }
            cv
        })
        .collect();
    v.insert("per_core", per_core)
}

fn epoch_json(e: &Epoch) -> Value {
    let mut v = Value::object()
        .insert("index", e.index as f64)
        .insert("counts", counts_json(&e.counts));
    if let Some(ref s) = e.snapshot {
        v = v.insert("snapshot", snapshot_json(s));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_cache::{CoreId, SetIdx};

    fn spill(from: u8, to: u8) -> ObsEvent {
        ObsEvent::Spill {
            from: CoreId(from),
            to: CoreId(to),
            set: SetIdx(0),
        }
    }

    #[test]
    fn epochs_partition_the_event_stream() {
        let mut r = EpochRecorder::new(2);
        r.record(spill(0, 1));
        r.record(spill(0, 1));
        r.on_epoch(0, &PolicySnapshot::new("p"));
        r.record(spill(1, 0));
        r.finish();
        assert_eq!(r.epochs().len(), 2);
        assert_eq!(r.epochs()[0].counts.spill_matrix[0][1], 2);
        assert!(r.epochs()[0].snapshot.is_some());
        assert_eq!(r.epochs()[1].counts.spill_matrix[1][0], 1);
        assert!(r.epochs()[1].snapshot.is_none());
        assert_eq!(r.totals().spills(), 3);
        // finish() is idempotent and empty tails are dropped.
        r.finish();
        assert_eq!(r.epochs().len(), 2);
    }

    #[test]
    fn totals_cover_the_open_epoch() {
        let mut r = EpochRecorder::new(1);
        r.record(ObsEvent::Writeback { core: CoreId(0) });
        assert_eq!(r.totals().writebacks[0], 1);
        assert!(r.epochs().is_empty(), "nothing closed yet");
    }

    #[test]
    fn json_shape() {
        let mut r = EpochRecorder::new(2);
        r.record(spill(0, 1));
        let mut snap = PolicySnapshot::new("ASCC");
        snap.capacity_activations = Some(4);
        r.on_epoch(0, &snap);
        r.finish();
        let v = r.to_json();
        assert_eq!(v.get("cores").and_then(Value::as_u64), Some(2));
        let epochs = v.get("epochs").and_then(Value::as_array).unwrap();
        assert_eq!(epochs.len(), 1);
        let snap_v = epochs[0].get("snapshot").unwrap();
        assert_eq!(snap_v.get("policy").and_then(Value::as_str), Some("ASCC"));
        assert_eq!(
            snap_v.get("capacity_activations").and_then(Value::as_u64),
            Some(4)
        );
        // Round-trips through the parser.
        let text = v.pretty();
        let parsed = Value::parse(&text).unwrap();
        assert_eq!(
            parsed
                .get("totals")
                .and_then(|t| t.get("spill_matrix"))
                .and_then(Value::as_array)
                .map(|rows| rows.len()),
            Some(2)
        );
    }

    #[test]
    fn epoch_counts_merge() {
        let mut a = EpochCounts::new(2);
        let mut b = EpochCounts::new(2);
        a.add(spill(0, 1));
        b.add(spill(0, 1));
        b.add(ObsEvent::Writeback { core: CoreId(1) });
        let mut total = EpochCounts::new(2);
        a.merge_into(&mut total);
        b.merge_into(&mut total);
        assert_eq!(total.spill_matrix[0][1], 2);
        assert_eq!(total.writebacks[1], 1);
        assert_eq!(total.spills(), 2);
    }
}
