//! # cmp-sim — the CMP simulator of the ASCC/AVGCC reproduction
//!
//! Ties every substrate together: [`cmp_trace`] workloads drive analytical
//! cores over private L1/L2 hierarchies built from [`cmp_cache`] caches,
//! kept coherent by the [`cmp_coherence`] snoop bus, with capacity sharing
//! steered by any [`cmp_cache::LlcPolicy`] (the `ascc` crate's designs or
//! the `spill-baselines` crate's comparison points).
//!
//! * [`CmpSystem`] — the private-LLC CMP of Table 2 (multiprogrammed or
//!   multithreaded);
//! * [`SharedLlcSystem`] — the shared interleaved LLC of §6.1;
//! * [`RunResult`] + metric functions — weighted speedup, fairness,
//!   average memory latency, access breakdowns (§6);
//! * [`EnergyModel`] — the §6.2 power-reduction accounting;
//! * [`SweepPool`] — deterministic parallel fan-out of independent runs
//!   (the `ASCC_JOBS` knob);
//! * runner helpers — mixes, solo characterisation runs and Fig. 1's
//!   fully-associative column.
//!
//! ## Example
//!
//! ```
//! use cmp_cache::PrivateBaseline;
//! use cmp_sim::{run_mix, weighted_speedup_improvement, SystemConfig};
//! use cmp_trace::two_app_mixes;
//!
//! // A fast, downscaled sanity run of the paper's first 2-app mix.
//! let mut cfg = SystemConfig::table2(2);
//! cfg.l2 = cmp_cache::CacheGeometry::from_capacity(64 << 10, 8, 32).unwrap();
//! let mix = &two_app_mixes()[0];
//! let base = run_mix(&cfg, mix, Box::new(PrivateBaseline::new()), 50_000, 10_000, 1);
//! assert_eq!(base.cores.len(), 2);
//! // The baseline compared to itself shows no improvement.
//! assert!(weighted_speedup_improvement(&base, &base).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod energy;
mod metrics;
mod obs;
mod runner;
mod sched;
mod shared;
pub mod snapshot;
mod sweep;
mod system;

pub use config::SystemConfig;
pub use energy::EnergyModel;
pub use metrics::{
    fairness_improvement, geomean_improvement, weighted_speedup_improvement, CoreResult, RunResult,
};
pub use obs::{snapshot_json, Epoch, EpochCounts, EpochRecorder};
pub use runner::{
    core_seed, mix_sources, mix_workloads, run_mix, run_mix_with, run_sharing, run_solo,
    run_sources_with, run_tenant, tenant_sources, Checkpointing, SoloRun, CORE_SPACE_BITS,
};
pub use shared::{SharedConfig, SharedLlcSystem};
pub use sweep::{CancelToken, SweepPool};
pub use system::{batch_enabled, CmpSystem};
