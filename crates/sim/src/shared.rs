//! The shared-LLC comparison system (§6.1).
//!
//! "We have also simulated the usage by all the cores of an L2 shared cache
//! of the same aggregated capacity in which addresses are mapped to banks in
//! an interleaved way. This cache has been simulated using an average
//! latency (almost twice the latency of a private L2 in the baseline for the
//! 2-core experiments and almost four times using 4 cores) … all caches are
//! write-back in this configuration."

use crate::config::SystemConfig;
use crate::metrics::{CoreResult, RunResult};
use cmp_cache::{
    AccessKind, CacheGeometry, CacheLine, FillKind, InsertPos, LineAddr, MesiState, SetAssocCache,
};
use cmp_trace::{CoreSource, CoreWorkload};

/// Configuration of the shared-LLC system.
#[derive(Clone, Debug)]
pub struct SharedConfig {
    /// Number of cores.
    pub cores: usize,
    /// Private L1 geometry.
    pub l1: CacheGeometry,
    /// Shared LLC geometry (aggregate capacity of the private baseline).
    pub llc: CacheGeometry,
    /// Average access latency of the interleaved banks.
    pub lat_llc: u32,
    /// Memory latency.
    pub lat_mem: u32,
}

impl SharedConfig {
    /// Derives the shared configuration from a private baseline: aggregate
    /// capacity, and the paper's "almost `cores`-times the private latency"
    /// average bank latency.
    pub fn from_private(cfg: &SystemConfig) -> Self {
        let cap = cfg.l2.capacity_bytes() * cfg.cores as u64;
        SharedConfig {
            cores: cfg.cores,
            l1: cfg.l1,
            llc: CacheGeometry::from_capacity(cap, cfg.l2.ways(), cfg.l2.line_bytes())
                .expect("aggregate capacity is a valid geometry"),
            // "almost twice ... almost four times": one cycle short.
            lat_llc: cfg.lat_l2_local * cfg.cores as u32 - 1,
            lat_mem: cfg.lat_mem,
        }
    }
}

struct SharedCore {
    source: CoreSource,
    clock: f64,
    carry: f64,
    instrs: u64,
    cycles: f64,
    start: Option<(u64, f64, CoreCnt)>,
    end: Option<(u64, f64, CoreCnt)>,
    cnt: CoreCnt,
}

#[derive(Clone, Copy, Default)]
struct CoreCnt {
    l1_accesses: u64,
    l1_hits: u64,
    llc_accesses: u64,
    llc_hits: u64,
    llc_misses: u64,
    offchip_fetches: u64,
    writebacks: u64,
}

/// A CMP with one shared, interleaved LLC — the §6.1 comparison point.
pub struct SharedLlcSystem {
    cfg: SharedConfig,
    l1s: Vec<SetAssocCache>,
    llc: SetAssocCache,
    cores: Vec<SharedCore>,
}

impl std::fmt::Debug for SharedLlcSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedLlcSystem")
            .field("cores", &self.cores.len())
            .field("llc", &self.cfg.llc)
            .finish()
    }
}

impl SharedLlcSystem {
    /// Builds the system over streaming workloads (see
    /// [`from_sources`](SharedLlcSystem::from_sources) for the arena-backed
    /// front-end).
    ///
    /// # Panics
    ///
    /// Panics if `workloads.len() != cfg.cores`.
    pub fn new(cfg: SharedConfig, workloads: Vec<CoreWorkload>) -> Self {
        Self::from_sources(cfg, workloads.into_iter().map(Into::into).collect())
    }

    /// Builds the system over per-core [`CoreSource`]s.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len() != cfg.cores`.
    pub fn from_sources(cfg: SharedConfig, sources: Vec<CoreSource>) -> Self {
        assert_eq!(sources.len(), cfg.cores, "one workload per core");
        SharedLlcSystem {
            l1s: (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l1)).collect(),
            llc: SetAssocCache::new(cfg.llc),
            cores: sources
                .into_iter()
                .map(|w| SharedCore {
                    source: w,
                    clock: 0.0,
                    carry: 0.0,
                    instrs: 0,
                    cycles: 0.0,
                    start: None,
                    end: None,
                    cnt: CoreCnt::default(),
                })
                .collect(),
            cfg,
        }
    }

    /// Runs warmup + measured instructions per core (same protocol as
    /// [`crate::CmpSystem::run`]). Dispatches on the `ASCC_BATCH` knob
    /// between the horizon-batched interleave (default) and the per-access
    /// streaming one; the two produce identical access orders.
    pub fn run(&mut self, instr_target: u64, warmup_instrs: u64) -> RunResult {
        assert!(instr_target > 0, "need a nonzero instruction target");
        if crate::batch_enabled() {
            self.interleave_batched(instr_target, warmup_instrs);
        } else {
            self.interleave_streaming(instr_target, warmup_instrs);
        }
        RunResult {
            policy: "shared-LLC".to_string(),
            cores: self
                .cores
                .iter()
                .map(|c| {
                    let (si, sc, s) = c.start.expect("set in run()");
                    let (ei, ec, e) = c.end.expect("set in run()");
                    CoreResult {
                        label: c.source.label.clone(),
                        instrs: ei - si,
                        cycles: ec - sc,
                        l2_accesses: e.llc_accesses - s.llc_accesses,
                        l2_local_hits: e.llc_hits - s.llc_hits,
                        l2_remote_hits: 0,
                        l2_mem: e.llc_misses - s.llc_misses,
                        offchip_fetches: e.offchip_fetches - s.offchip_fetches,
                        writebacks: e.writebacks - s.writebacks,
                        l1_accesses: e.l1_accesses - s.l1_accesses,
                        l1_hits: e.l1_hits - s.l1_hits,
                    }
                })
                .collect(),
            spills: 0,
            swaps: 0,
            spill_hits: 0,
        }
    }

    /// One access per scheduler pick: always advance the globally-oldest
    /// core (first-minimum clock).
    fn interleave_streaming(&mut self, instr_target: u64, warmup_instrs: u64) {
        loop {
            let i = self
                .cores
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.clock.total_cmp(&b.1.clock))
                .map(|(i, _)| i)
                .expect("at least one core");
            self.step(i);
            if self.bookkeeping(i, instr_target, warmup_instrs) {
                break;
            }
        }
    }

    /// Horizon-batched interleave: the scheduled core drains as long as
    /// the streaming scheduler would keep picking it (its clock stays
    /// below the other cores' minimum, or ties it with the smaller index),
    /// so the argmin scan runs once per drain instead of once per access.
    /// Access-for-access identical order to
    /// [`interleave_streaming`](SharedLlcSystem::interleave_streaming).
    fn interleave_batched(&mut self, instr_target: u64, warmup_instrs: u64) {
        'sched: loop {
            let mut i = 0usize;
            for j in 1..self.cores.len() {
                if self.cores[j].clock.total_cmp(&self.cores[i].clock) == std::cmp::Ordering::Less {
                    i = j;
                }
            }
            let mut horizon = f64::INFINITY;
            let mut jfirst = usize::MAX;
            for (j, c) in self.cores.iter().enumerate() {
                if j != i && c.clock.total_cmp(&horizon) == std::cmp::Ordering::Less {
                    horizon = c.clock;
                    jfirst = j;
                }
            }
            let wins_tie = i < jfirst;
            loop {
                if !crate::system::holds_schedule(self.cores[i].clock, horizon, wins_tie) {
                    continue 'sched;
                }
                self.step(i);
                if self.bookkeeping(i, instr_target, warmup_instrs) {
                    break 'sched;
                }
            }
        }
    }

    /// Post-access warm-up/end capture; `true` once every core is done.
    fn bookkeeping(&mut self, i: usize, instr_target: u64, warmup_instrs: u64) -> bool {
        let c = &mut self.cores[i];
        if c.start.is_none() && c.instrs >= warmup_instrs {
            c.start = Some((c.instrs, c.cycles, c.cnt));
        }
        if let Some((si, _, _)) = c.start {
            if c.end.is_none() && c.instrs - si >= instr_target {
                c.end = Some((c.instrs, c.cycles, c.cnt));
            }
        }
        self.cores.iter().all(|c| c.end.is_some())
    }

    fn step(&mut self, i: usize) {
        let acc = self.cores[i].source.feed.next_access();
        let cpu = self.cores[i].source.cpu;
        {
            let c = &mut self.cores[i];
            c.carry += 1.0 / cpu.mem_fraction;
            let n = (c.carry as u64).max(1);
            c.carry -= n as f64;
            c.instrs += n;
            c.clock += n as f64 * cpu.base_cpi;
            c.cycles += n as f64 * cpu.base_cpi;
            c.cnt.l1_accesses += 1;
        }
        let line = acc.addr.line(self.cfg.l1.offset_bits());
        let l1_hit = self.l1s[i].access(line).is_some();
        let latency = if l1_hit {
            self.cores[i].cnt.l1_hits += 1;
            if acc.kind.is_store() {
                // Coalescing write buffer: state-only update (see CmpSystem).
                self.llc.set_state(line, MesiState::Modified);
            }
            0
        } else {
            let lat = self.llc_access(i, line, acc.kind);
            let set = self.cfg.l1.set_of(line);
            let way = self.l1s[i].set(set).default_victim();
            self.l1s[i].fill(
                set,
                way,
                CacheLine::demand(line, MesiState::Exclusive),
                InsertPos::Mru,
                FillKind::Demand,
            );
            lat
        };
        if !acc.kind.is_store() && latency > 0 {
            let c = &mut self.cores[i];
            let stall = latency as f64 * cpu.overlap;
            c.clock += stall;
            c.cycles += stall;
        }
    }

    fn llc_access(&mut self, i: usize, line: LineAddr, kind: AccessKind) -> u32 {
        self.cores[i].cnt.llc_accesses += 1;
        if self.llc.access(line).is_some() {
            self.cores[i].cnt.llc_hits += 1;
            if kind.is_store() {
                self.llc.set_state(line, MesiState::Modified);
            }
            return self.cfg.lat_llc;
        }
        self.cores[i].cnt.llc_misses += 1;
        self.cores[i].cnt.offchip_fetches += 1;
        let set = self.cfg.llc.set_of(line);
        let way = self.llc.set(set).default_victim();
        let state = if kind.is_store() {
            MesiState::Modified
        } else {
            MesiState::Exclusive
        };
        let evicted = self.llc.fill(
            set,
            way,
            CacheLine::demand(line, state),
            InsertPos::Mru,
            FillKind::Demand,
        );
        if let Some(v) = evicted {
            // The shared LLC backs every L1: back-invalidate them all.
            for l1 in &mut self.l1s {
                l1.invalidate(v.addr);
            }
            if v.state.is_dirty() {
                self.cores[i].cnt.writebacks += 1;
            }
        }
        self.cfg.lat_llc + self.cfg.lat_mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_trace::{CpuModel, CyclicStream};

    fn workload(base: u64, region: u64) -> CoreWorkload {
        CoreWorkload {
            label: "loop".to_string(),
            cpu: CpuModel {
                mem_fraction: 0.25,
                base_cpi: 1.0,
                overlap: 1.0,
                store_fraction: 0.0,
            },
            stream: Box::new(CyclicStream::words(base, region, 0)),
        }
    }

    fn cfg(cores: usize) -> SharedConfig {
        let mut private = SystemConfig::table2(cores);
        private.l1 = CacheGeometry::from_capacity(1 << 10, 2, 32).unwrap();
        private.l2 = CacheGeometry::from_capacity(16 << 10, 4, 32).unwrap();
        SharedConfig::from_private(&private)
    }

    #[test]
    fn aggregate_capacity_and_latency() {
        let c = cfg(4);
        assert_eq!(c.llc.capacity_bytes(), 64 << 10);
        assert_eq!(c.lat_llc, 35); // 4*9 - 1: "almost four times"
        let c2 = cfg(2);
        assert_eq!(c2.lat_llc, 17); // "almost twice"
    }

    #[test]
    fn capacity_hungry_pair_shares_the_llc() {
        // One big loop (24 kB) + one tiny: alone the big loop would not fit
        // a 16 kB private L2, but the 32 kB shared LLC holds both.
        let mut sys = SharedLlcSystem::new(
            cfg(2),
            vec![workload(0, 24 << 10), workload(1 << 30, 1 << 10)],
        );
        // Warm up long enough for several full passes of the 24 kB loop
        // (one pass is 6144 accesses = ~24k instructions).
        let r = sys.run(100_000, 100_000);
        assert_eq!(r.cores[0].l2_mem, 0, "shared LLC absorbs the big loop");
    }

    #[test]
    fn shared_hits_cost_the_interleaved_latency() {
        let mut sys =
            SharedLlcSystem::new(cfg(2), vec![workload(0, 4 << 10), workload(1 << 30, 512)]);
        let r = sys.run(40_000, 10_000);
        let c = &r.cores[0];
        // CPI = base + f * (1/8) * lat_llc (17 cycles).
        let expect = 1.0 + 0.25 * 0.125 * 17.0;
        assert!((c.cpi() - expect).abs() < 0.15, "cpi {}", c.cpi());
    }

    #[test]
    fn interference_is_possible_in_shared_llc() {
        // Two thrashing loops bigger than half the LLC interfere.
        let mut sys = SharedLlcSystem::new(
            cfg(2),
            vec![workload(0, 24 << 10), workload(1 << 30, 24 << 10)],
        );
        let r = sys.run(40_000, 10_000);
        assert!(
            r.cores[0].l2_mem > 0 && r.cores[1].l2_mem > 0,
            "both loops should thrash the shared LLC: {:?}",
            (r.cores[0].l2_mem, r.cores[1].l2_mem)
        );
    }
}
