//! Deterministic fan-out of independent simulation jobs across cores.
//!
//! The whole evaluation is a sweep of independent `(mix × policy × config)`
//! simulations: every job is a pure function of its inputs (the simulator
//! has no hidden randomness — each run builds its own seeded RNGs), so runs
//! can execute on any thread in any order without changing a single bit of
//! their results. [`SweepPool`] exploits that: it fans jobs out over a
//! `std::thread::scope` worker pool (no dependencies, nothing leaves the
//! call) and returns results **in submission order**.
//!
//! # Determinism contract
//!
//! - Job functions must be pure with respect to their input (no shared
//!   mutable state, no ambient randomness). All `run_mix`/[`crate::SoloRun`]
//!   jobs qualify.
//! - Results are returned in submission order regardless of completion
//!   order, so downstream output (tables, JSON) is byte-identical for any
//!   worker count.
//! - `jobs = 1` does not spawn at all: the sweep runs inline on the caller's
//!   thread, reproducing the pre-pool sequential engine exactly.
//!
//! The worker count comes from the `ASCC_JOBS` environment variable
//! (default: available parallelism), so `ASCC_JOBS=1 run_all` is the
//! sequential engine and the default uses the whole machine.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A shared cancellation flag for long-running sweeps and simulations.
///
/// Clones share one flag (it is an `Arc` internally), so a controller —
/// e.g. the `ascc-serve` daemon handling `DELETE /jobs/:id` — can keep one
/// handle while the worker polls another. Cancellation is cooperative and
/// sticky: once [`cancel`](CancelToken::cancel) fires, every observer sees
/// it and it never resets.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether [`cancel`](CancelToken::cancel) has been called on this
    /// token (or any clone of it).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A worker pool for sweeping independent jobs, sized once at construction.
///
/// # Examples
///
/// ```
/// use cmp_sim::SweepPool;
/// let squares = SweepPool::from_env().map((0..64).collect(), |x: u64| x * x);
/// assert_eq!(squares[10], 100);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SweepPool {
    jobs: usize,
}

impl SweepPool {
    /// A pool sized by the `ASCC_JOBS` environment variable, defaulting to
    /// the machine's available parallelism. Zero or unparsable values fall
    /// back to the default.
    pub fn from_env() -> Self {
        let jobs = std::env::var("ASCC_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(Self::default_jobs);
        SweepPool { jobs }
    }

    /// A pool with an explicit worker count (`0` is clamped to `1`).
    pub fn with_jobs(jobs: usize) -> Self {
        SweepPool { jobs: jobs.max(1) }
    }

    fn default_jobs() -> usize {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    }

    /// The configured worker count.
    #[inline]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `f` over every item, returning results in submission order.
    ///
    /// With one worker the items are processed inline on the calling
    /// thread; otherwise up to `jobs` scoped threads pull items off a
    /// shared atomic index.
    pub fn map<T: Send, R: Send>(&self, items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
        self.map_cancellable(items, f, &CancelToken::new())
            .expect("an uncancelled sweep always completes")
    }

    /// [`map`](SweepPool::map), but abandoning the sweep when `cancel`
    /// fires: workers stop pulling new items (in-flight items finish — job
    /// functions are pure, so there is nothing to roll back) and the whole
    /// call returns `None` instead of a partial, hole-filled result vector.
    ///
    /// An uncancelled run returns `Some(results)` in submission order,
    /// bit-identical to [`map`](SweepPool::map).
    pub fn map_cancellable<T: Send, R: Send>(
        &self,
        items: Vec<T>,
        f: impl Fn(T) -> R + Sync,
        cancel: &CancelToken,
    ) -> Option<Vec<R>> {
        let n = items.len();
        let threads = self.jobs.min(n.max(1));
        if threads <= 1 {
            let mut out = Vec::with_capacity(n);
            for item in items {
                if cancel.is_cancelled() {
                    return None;
                }
                out.push(f(item));
            }
            return Some(out);
        }
        let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    if cancel.is_cancelled() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("unpoisoned")
                        .take()
                        .expect("taken once");
                    *results[i].lock().expect("unpoisoned") = Some(f(item));
                });
            }
        });
        if cancel.is_cancelled() {
            return None;
        }
        Some(
            results
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .expect("unpoisoned")
                        .expect("every slot filled")
                })
                .collect(),
        )
    }
}

impl Default for SweepPool {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_submission_order() {
        // Uneven per-item work so completion order differs from submission.
        let out = SweepPool::with_jobs(8).map((0..200u64).collect(), |x| {
            if x % 7 == 0 {
                std::thread::yield_now();
            }
            x * 3
        });
        assert_eq!(out, (0..200).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn one_worker_is_inline() {
        // With jobs=1 the closure runs on the caller's thread.
        let caller = std::thread::current().id();
        let out = SweepPool::with_jobs(1).map(vec![(), (), ()], |()| std::thread::current().id());
        assert!(out.iter().all(|&id| id == caller));
    }

    #[test]
    fn worker_counts_agree() {
        let seq = SweepPool::with_jobs(1).map((0..64).collect(), |x: u64| x.wrapping_mul(0x9e37));
        let par = SweepPool::with_jobs(8).map((0..64).collect(), |x: u64| x.wrapping_mul(0x9e37));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_zero_clamp() {
        let out: Vec<u32> = SweepPool::with_jobs(0).map(Vec::new(), |x| x);
        assert!(out.is_empty());
        assert_eq!(SweepPool::with_jobs(0).jobs(), 1);
    }

    #[test]
    fn uncancelled_map_cancellable_matches_map() {
        let token = CancelToken::new();
        let a = SweepPool::with_jobs(4).map_cancellable((0..50).collect(), |x: u64| x + 7, &token);
        let b = SweepPool::with_jobs(4).map((0..50).collect(), |x: u64| x + 7);
        assert_eq!(a, Some(b));
    }

    #[test]
    fn cancellation_aborts_parallel_and_inline_sweeps() {
        for jobs in [1usize, 4] {
            let token = CancelToken::new();
            let fired = AtomicUsize::new(0);
            let out = SweepPool::with_jobs(jobs).map_cancellable(
                (0..1000).collect(),
                |x: u64| {
                    // Cancel from inside an early item; later items must
                    // never start.
                    if fired.fetch_add(1, Ordering::SeqCst) == 2 {
                        token.cancel();
                    }
                    x
                },
                &token,
            );
            assert_eq!(out, None, "jobs={jobs}");
            assert!(
                fired.load(Ordering::SeqCst) < 1000,
                "jobs={jobs}: cancellation must stop the sweep early"
            );
        }
    }

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        b.cancel(); // idempotent
        assert!(a.is_cancelled());
    }
}
