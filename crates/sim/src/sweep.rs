//! Deterministic fan-out of independent simulation jobs across cores.
//!
//! The whole evaluation is a sweep of independent `(mix × policy × config)`
//! simulations: every job is a pure function of its inputs (the simulator
//! has no hidden randomness — each run builds its own seeded RNGs), so runs
//! can execute on any thread in any order without changing a single bit of
//! their results. [`SweepPool`] exploits that: it fans jobs out over a
//! `std::thread::scope` worker pool (no dependencies, nothing leaves the
//! call) and returns results **in submission order**.
//!
//! # Determinism contract
//!
//! - Job functions must be pure with respect to their input (no shared
//!   mutable state, no ambient randomness). All `run_mix`/[`crate::SoloRun`]
//!   jobs qualify.
//! - Results are returned in submission order regardless of completion
//!   order, so downstream output (tables, JSON) is byte-identical for any
//!   worker count.
//! - `jobs = 1` does not spawn at all: the sweep runs inline on the caller's
//!   thread, reproducing the pre-pool sequential engine exactly.
//!
//! The worker count comes from the `ASCC_JOBS` environment variable
//! (default: available parallelism), so `ASCC_JOBS=1 run_all` is the
//! sequential engine and the default uses the whole machine.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A worker pool for sweeping independent jobs, sized once at construction.
///
/// # Examples
///
/// ```
/// use cmp_sim::SweepPool;
/// let squares = SweepPool::from_env().map((0..64).collect(), |x: u64| x * x);
/// assert_eq!(squares[10], 100);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SweepPool {
    jobs: usize,
}

impl SweepPool {
    /// A pool sized by the `ASCC_JOBS` environment variable, defaulting to
    /// the machine's available parallelism. Zero or unparsable values fall
    /// back to the default.
    pub fn from_env() -> Self {
        let jobs = std::env::var("ASCC_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(Self::default_jobs);
        SweepPool { jobs }
    }

    /// A pool with an explicit worker count (`0` is clamped to `1`).
    pub fn with_jobs(jobs: usize) -> Self {
        SweepPool { jobs: jobs.max(1) }
    }

    fn default_jobs() -> usize {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    }

    /// The configured worker count.
    #[inline]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `f` over every item, returning results in submission order.
    ///
    /// With one worker the items are processed inline on the calling
    /// thread; otherwise up to `jobs` scoped threads pull items off a
    /// shared atomic index.
    pub fn map<T: Send, R: Send>(&self, items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
        let n = items.len();
        let threads = self.jobs.min(n.max(1));
        if threads <= 1 {
            return items.into_iter().map(f).collect();
        }
        let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("unpoisoned")
                        .take()
                        .expect("taken once");
                    *results[i].lock().expect("unpoisoned") = Some(f(item));
                });
            }
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("unpoisoned")
                    .expect("every slot filled")
            })
            .collect()
    }
}

impl Default for SweepPool {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_submission_order() {
        // Uneven per-item work so completion order differs from submission.
        let out = SweepPool::with_jobs(8).map((0..200u64).collect(), |x| {
            if x % 7 == 0 {
                std::thread::yield_now();
            }
            x * 3
        });
        assert_eq!(out, (0..200).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn one_worker_is_inline() {
        // With jobs=1 the closure runs on the caller's thread.
        let caller = std::thread::current().id();
        let out = SweepPool::with_jobs(1).map(vec![(), (), ()], |()| std::thread::current().id());
        assert!(out.iter().all(|&id| id == caller));
    }

    #[test]
    fn worker_counts_agree() {
        let seq = SweepPool::with_jobs(1).map((0..64).collect(), |x: u64| x.wrapping_mul(0x9e37));
        let par = SweepPool::with_jobs(8).map((0..64).collect(), |x: u64| x.wrapping_mul(0x9e37));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_zero_clamp() {
        let out: Vec<u32> = SweepPool::with_jobs(0).map(Vec::new(), |x| x);
        assert!(out.is_empty());
        assert_eq!(SweepPool::with_jobs(0).jobs(), 1);
    }
}
