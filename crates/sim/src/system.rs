//! The CMP simulator: private two-level hierarchies over a snoop bus, an
//! analytical core timing model, and the spill/swap orchestration that the
//! LLC policies steer.
//!
//! ## Timing model
//!
//! Cores are modelled analytically (DESIGN.md substitution #2): committing
//! `n` instructions costs `n * base_cpi` cycles, and a load that misses in
//! L1 additionally stalls the core for the hierarchy latency scaled by the
//! benchmark's `overlap` factor (its memory-level parallelism). Stores are
//! buffered (write-through L1, write-back L2) and never stall. The
//! simulation interleaves cores at access granularity by always advancing
//! the core with the smallest clock, so caches observe a realistic global
//! interleaving of the competing access streams.
//!
//! ## Memory-system behaviour per L2 access
//!
//! 1. local hit (9 cycles): recency promoted, SSL/PSEL counters informed;
//! 2. remote hit (25 cycles): found by the MESI broadcast in a peer LLC;
//!    migrated home (multiprogrammed) or replicated (multithreaded). If the
//!    policy enables §3.2 swapping and both the requested line and the
//!    local victim are last copies, they exchange places;
//! 3. memory (460 cycles): fetched; the victim, if it was the last on-chip
//!    copy, is offered to the policy for spilling into a peer's same-index
//!    set.

use crate::config::SystemConfig;
use crate::metrics::{CoreResult, RunResult};
use cmp_cache::{
    AccessKind, AccessOutcome, CacheLine, CoreId, FillKind, InsertPos, LineAddr, LlcPolicy,
    MesiState, NullProbe, ObsEvent, ObsProbe, SetAssocCache, SetIdx, SpillDecision,
    StridePrefetcher,
};
use cmp_coherence::{ReadPolicy, SnoopBus};
use cmp_trace::{CoreSource, CoreWorkload};

#[derive(Clone, Copy, Debug, Default)]
struct Counters {
    instrs: u64,
    cycles: f64,
    l1_accesses: u64,
    l1_hits: u64,
    l2_accesses: u64,
    l2_local_hits: u64,
    l2_remote_hits: u64,
    l2_mem: u64,
    offchip_fetches: u64,
    writebacks: u64,
}

struct CoreState {
    source: CoreSource,
    clock: f64,
    carry: f64,
    counters: Counters,
    warm_snap: Option<Counters>,
    end_snap: Option<Counters>,
}

#[derive(Clone, Copy, Debug, Default)]
struct GlobalCounters {
    spills: u64,
    swaps: u64,
    spill_hits: u64,
}

/// The multiprogrammed/multithreaded CMP simulator.
///
/// `CmpSystem` is generic over an [`ObsProbe`]: the default [`NullProbe`]
/// observes nothing and costs nothing (every emission site is gated on the
/// compile-time constant [`ObsProbe::ACTIVE`]), while an active probe —
/// e.g. [`EpochRecorder`](crate::EpochRecorder) — receives a typed
/// [`ObsEvent`] for every fill, eviction, spill, swap, remote hit and
/// policy adaptation, plus a [`PolicySnapshot`](cmp_cache::PolicySnapshot)
/// at every observation-epoch boundary.
pub struct CmpSystem<P: ObsProbe = NullProbe> {
    cfg: SystemConfig,
    l1s: Vec<SetAssocCache>,
    l2s: Vec<SetAssocCache>,
    bus: SnoopBus,
    policy: Box<dyn LlcPolicy>,
    prefetchers: Vec<StridePrefetcher>,
    pf_buf: Vec<LineAddr>,
    cores: Vec<CoreState>,
    global: GlobalCounters,
    global_warm: Option<GlobalCounters>,
    probe: P,
    /// Global L2 accesses per observation epoch; 0 disables epochs.
    epoch_accesses: u64,
    epoch_counter: u64,
    epoch_index: u64,
    drain_buf: Vec<ObsEvent>,
}

impl<P: ObsProbe> std::fmt::Debug for CmpSystem<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CmpSystem")
            .field("cores", &self.cores.len())
            .field("policy", &self.policy.name())
            .field("observed", &P::ACTIVE)
            .finish()
    }
}

impl CmpSystem<NullProbe> {
    /// Builds an unobserved system running streaming `workloads` (one per
    /// core) under `policy`. This is the plain-generator path — tests and
    /// `trace_tool` use it with arbitrary custom streams; sweeps route
    /// through [`from_sources`](CmpSystem::from_sources) so shared
    /// materialized traces replay instead.
    ///
    /// # Panics
    ///
    /// Panics if `workloads.len() != cfg.cores`.
    pub fn new(
        cfg: SystemConfig,
        policy: Box<dyn LlcPolicy>,
        workloads: Vec<CoreWorkload>,
    ) -> Self {
        Self::from_sources(cfg, policy, workloads.into_iter().map(Into::into).collect())
    }

    /// Builds an unobserved system over per-core [`CoreSource`]s — the
    /// front-end the sweep uses, feeding each core from either a live
    /// generator or a shared materialized trace cursor.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len() != cfg.cores`.
    pub fn from_sources(
        cfg: SystemConfig,
        policy: Box<dyn LlcPolicy>,
        sources: Vec<CoreSource>,
    ) -> Self {
        Self::with_probe_sources(cfg, policy, sources, NullProbe, 0)
    }
}

impl<P: ObsProbe> CmpSystem<P> {
    /// Builds a system with an attached observation probe over streaming
    /// workloads (see [`with_probe_sources`](CmpSystem::with_probe_sources)
    /// for the source-based equivalent).
    ///
    /// `epoch_accesses` sets the observation-epoch length in *global* L2
    /// accesses: every `epoch_accesses` accesses the probe receives
    /// [`ObsProbe::on_epoch`] with a fresh policy snapshot (0 disables
    /// epoch callbacks; events still flow). Pass `&mut probe` to keep
    /// ownership of the probe at the call site.
    ///
    /// # Panics
    ///
    /// Panics if `workloads.len() != cfg.cores`.
    pub fn with_probe(
        cfg: SystemConfig,
        policy: Box<dyn LlcPolicy>,
        workloads: Vec<CoreWorkload>,
        probe: P,
        epoch_accesses: u64,
    ) -> Self {
        Self::with_probe_sources(
            cfg,
            policy,
            workloads.into_iter().map(Into::into).collect(),
            probe,
            epoch_accesses,
        )
    }

    /// Builds a probed system over per-core [`CoreSource`]s.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len() != cfg.cores`.
    pub fn with_probe_sources(
        cfg: SystemConfig,
        mut policy: Box<dyn LlcPolicy>,
        sources: Vec<CoreSource>,
        probe: P,
        epoch_accesses: u64,
    ) -> Self {
        assert_eq!(
            sources.len(),
            cfg.cores,
            "need exactly one workload per core"
        );
        policy.set_observed(P::ACTIVE);
        let l2_builder = || {
            let c = SetAssocCache::new(cfg.l2);
            if cfg.track_set_stats {
                c.with_set_stats()
            } else {
                c
            }
        };
        CmpSystem {
            l1s: (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l1)).collect(),
            l2s: (0..cfg.cores).map(|_| l2_builder()).collect(),
            bus: SnoopBus::new(),
            prefetchers: cfg
                .prefetch
                .map(|p| (0..cfg.cores).map(|_| StridePrefetcher::new(p)).collect())
                .unwrap_or_default(),
            pf_buf: Vec::with_capacity(8),
            cores: sources
                .into_iter()
                .map(|w| CoreState {
                    source: w,
                    clock: 0.0,
                    carry: 0.0,
                    counters: Counters::default(),
                    warm_snap: None,
                    end_snap: None,
                })
                .collect(),
            policy,
            global: GlobalCounters::default(),
            global_warm: None,
            cfg,
            probe,
            epoch_accesses,
            epoch_counter: 0,
            epoch_index: 0,
            drain_buf: Vec::new(),
        }
    }

    /// The attached probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// The active policy.
    pub fn policy(&self) -> &dyn LlcPolicy {
        &*self.policy
    }

    /// A core's private L2 (e.g. for per-set statistics).
    pub fn l2(&self, core: CoreId) -> &SetAssocCache {
        &self.l2s[core.index()]
    }

    /// All private L2s, core order (e.g. for coherence checking).
    pub fn l2s(&self) -> &[SetAssocCache] {
        &self.l2s
    }

    /// All private L1s, core order (e.g. for lockstep state comparison).
    pub fn l1s(&self) -> &[SetAssocCache] {
        &self.l1s
    }

    /// The snoop bus statistics.
    pub fn bus(&self) -> &SnoopBus {
        &self.bus
    }

    /// Verifies L1 ⊆ L2 inclusion for every core (test helper).
    ///
    /// # Panics
    ///
    /// Panics if any L1 holds a line its own L2 does not.
    pub fn assert_inclusive(&self) {
        for (i, l1) in self.l1s.iter().enumerate() {
            for s in 0..l1.geometry().sets() {
                for (_, line) in l1.set(SetIdx(s)).iter() {
                    assert!(
                        self.l2s[i].probe(line.addr).is_some(),
                        "core {i}: L1 line {:?} missing from L2 (inclusion)",
                        line.addr
                    );
                }
            }
        }
    }

    /// Runs the workloads: each core first commits `warmup_instrs` (not
    /// measured), then `instr_target` measured instructions. Cores that
    /// finish keep executing — competing for cache space — until the last
    /// one is done, as in the paper's methodology (§5).
    pub fn run(&mut self, instr_target: u64, warmup_instrs: u64) -> RunResult {
        assert!(instr_target > 0, "need a nonzero instruction target");
        loop {
            // Advance the globally-oldest core by one memory access.
            let i = self
                .cores
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.clock.total_cmp(&b.1.clock))
                .map(|(i, _)| i)
                .expect("at least one core");
            self.step(i);

            let c = &mut self.cores[i];
            if c.warm_snap.is_none() && c.counters.instrs >= warmup_instrs {
                c.warm_snap = Some(c.counters);
                if self.global_warm.is_none() && self.cores.iter().all(|c| c.warm_snap.is_some()) {
                    self.global_warm = Some(self.global);
                }
            }
            let c = &mut self.cores[i];
            if let Some(w) = c.warm_snap {
                if c.end_snap.is_none() && c.counters.instrs - w.instrs >= instr_target {
                    c.end_snap = Some(c.counters);
                }
            }
            if self.cores.iter().all(|c| c.end_snap.is_some()) {
                break;
            }
        }
        self.result()
    }

    fn result(&self) -> RunResult {
        let cores = self
            .cores
            .iter()
            .map(|c| {
                let w = c.warm_snap.expect("run() sets snapshots");
                let e = c.end_snap.expect("run() sets snapshots");
                CoreResult {
                    label: c.source.label.clone(),
                    instrs: e.instrs - w.instrs,
                    cycles: e.cycles - w.cycles,
                    l2_accesses: e.l2_accesses - w.l2_accesses,
                    l2_local_hits: e.l2_local_hits - w.l2_local_hits,
                    l2_remote_hits: e.l2_remote_hits - w.l2_remote_hits,
                    l2_mem: e.l2_mem - w.l2_mem,
                    offchip_fetches: e.offchip_fetches - w.offchip_fetches,
                    writebacks: e.writebacks - w.writebacks,
                    l1_accesses: e.l1_accesses - w.l1_accesses,
                    l1_hits: e.l1_hits - w.l1_hits,
                }
            })
            .collect();
        let gw = self.global_warm.unwrap_or_default();
        RunResult {
            policy: self.policy.name().to_string(),
            cores,
            spills: self.global.spills - gw.spills,
            swaps: self.global.swaps - gw.swaps,
            spill_hits: self.global.spill_hits - gw.spill_hits,
        }
    }

    /// Counters accumulated since construction, with *no* warm-up
    /// subtraction — the whole-lifetime view, usable at any point.
    ///
    /// This is the aggregate an event stream reconciles against: probes
    /// observe every event from cycle zero, so their totals match
    /// `lifetime_result()`, not the warm-up-windowed [`run`](CmpSystem::run)
    /// result.
    pub fn lifetime_result(&self) -> RunResult {
        let cores = self
            .cores
            .iter()
            .map(|c| {
                let e = c.counters;
                CoreResult {
                    label: c.source.label.clone(),
                    instrs: e.instrs,
                    cycles: e.cycles,
                    l2_accesses: e.l2_accesses,
                    l2_local_hits: e.l2_local_hits,
                    l2_remote_hits: e.l2_remote_hits,
                    l2_mem: e.l2_mem,
                    offchip_fetches: e.offchip_fetches,
                    writebacks: e.writebacks,
                    l1_accesses: e.l1_accesses,
                    l1_hits: e.l1_hits,
                }
            })
            .collect();
        RunResult {
            policy: self.policy.name().to_string(),
            cores,
            spills: self.global.spills,
            swaps: self.global.swaps,
            spill_hits: self.global.spill_hits,
        }
    }

    /// Advances core `i` by one memory access (public for fine-grained
    /// tests).
    pub fn step(&mut self, i: usize) {
        let acc = self.cores[i].source.feed.next_access();
        let cpu = self.cores[i].source.cpu;
        {
            let c = &mut self.cores[i];
            c.carry += 1.0 / cpu.mem_fraction;
            let n = (c.carry as u64).max(1);
            c.carry -= n as f64;
            c.counters.instrs += n;
            c.cycles_add(n as f64 * cpu.base_cpi);
            c.counters.l1_accesses += 1;
        }
        let line = acc.addr.line(self.cfg.l1.offset_bits());
        let l1_hit = self.l1s[i].access(line).is_some();
        let latency = if l1_hit {
            self.cores[i].counters.l1_hits += 1;
            if acc.kind.is_store() {
                // Write-through below L1 with a coalescing write buffer:
                // the L2 copy's state is updated (dirtiness, coherence
                // upgrade) but the buffered write does not occupy the L2 —
                // no recency promotion, no statistics, no policy event.
                self.upgrade_for_store(i, line);
            }
            0
        } else {
            let lat = self.l2_access(i, line, acc.kind, acc.stream);
            // Fill L1 (evictions are silent: write-through keeps L1 clean).
            let set = self.cfg.l1.set_of(line);
            let way = self.l1s[i].set(set).default_victim();
            self.l1s[i].fill(
                set,
                way,
                CacheLine::demand(line, MesiState::Exclusive),
                InsertPos::Mru,
                FillKind::Demand,
            );
            lat
        };
        let c = &mut self.cores[i];
        if !acc.kind.is_store() && latency > 0 {
            c.cycles_add(latency as f64 * cpu.overlap);
        }
        let clock = c.clock as u64;
        self.policy.on_cycle(CoreId(i as u8), clock);
        if P::ACTIVE {
            self.forward_policy_events();
            if self.epoch_accesses > 0 && self.epoch_counter >= self.epoch_accesses {
                self.epoch_counter -= self.epoch_accesses;
                let snap = self.policy.snapshot();
                self.probe.on_epoch(self.epoch_index, &snap);
                self.epoch_index += 1;
            }
        }
        #[cfg(feature = "debug-invariants")]
        self.debug_check_invariants();
    }

    /// Full structural-invariant sweep, run after every step under the
    /// `debug-invariants` feature.
    ///
    /// # Panics
    ///
    /// Panics on any MESI, recency, spilled-last-copy or policy-internal
    /// invariant violation.
    #[cfg(feature = "debug-invariants")]
    fn debug_check_invariants(&self) {
        let mut problems: Vec<String> = cmp_coherence::check_mesi(&self.l2s)
            .iter()
            .map(|v| v.to_string())
            .collect();
        problems.extend(
            cmp_coherence::check_recency(&self.l1s)
                .iter()
                .chain(cmp_coherence::check_recency(&self.l2s).iter())
                .map(|v| v.to_string()),
        );
        // Replication grants replicas while the supplier keeps its spilled
        // copy, so the last-copy property only holds under migration.
        if self.cfg.read_policy == ReadPolicy::Migrate {
            problems.extend(
                cmp_coherence::check_spilled_last_copies(&self.l2s)
                    .iter()
                    .map(|v| v.to_string()),
            );
        }
        problems.extend(self.policy.check_invariants());
        assert!(
            problems.is_empty(),
            "invariants violated after step: {}",
            problems.join("; ")
        );
    }

    /// Moves any events the policy buffered during this step into the
    /// probe (policy events interleave with the simulator's own in
    /// emission order within a step).
    fn forward_policy_events(&mut self) {
        let mut buf = std::mem::take(&mut self.drain_buf);
        self.policy.drain_events(&mut buf);
        for ev in buf.drain(..) {
            self.probe.record(ev);
        }
        self.drain_buf = buf;
    }

    /// One L2 access; returns its full (unoverlapped) latency in cycles.
    fn l2_access(&mut self, i: usize, line: LineAddr, kind: AccessKind, stream: u16) -> u32 {
        let set = self.cfg.l2.set_of(line);
        self.cores[i].counters.l2_accesses += 1;
        if P::ACTIVE {
            self.epoch_counter += 1;
        }
        let core = CoreId(i as u8);

        // Hit path: compute the pre-promotion outcome for the policy.
        if let Some((s, w)) = self.l2s[i].probe(line) {
            let (depth, spilled) = {
                let cs = self.l2s[i].set(s);
                (cs.depth_of(w) as u16, cs.line(w).expect("valid").spilled)
            };
            self.l2s[i].access(line);
            if spilled {
                self.global.spill_hits += 1;
            }
            if P::ACTIVE {
                self.probe.record(ObsEvent::LocalHit { core, set, spilled });
            }
            self.policy
                .record_access(core, set, AccessOutcome::Hit { spilled, depth });
            if kind.is_store() {
                self.upgrade_for_store(i, line);
            }
            self.cores[i].counters.l2_local_hits += 1;
            self.train_prefetcher(i, stream, line);
            return self.cfg.lat_l2_local;
        }

        // Miss path.
        self.l2s[i].access(line);
        if P::ACTIVE {
            self.probe.record(ObsEvent::Miss { core, set });
        }
        self.policy.record_access(core, set, AccessOutcome::Miss);
        let requested_last_copy = self.bus.holders(&self.l2s, line).len() == 1;

        let remote = if kind.is_store() {
            let hit = self.bus.write_miss(&mut self.l2s, core, line);
            if hit.is_some() {
                // Every remote copy vanished: keep the L1s inclusive.
                for (j, l1) in self.l1s.iter_mut().enumerate() {
                    if j != i {
                        l1.invalidate(line);
                    }
                }
            }
            hit
        } else {
            let hit = self
                .bus
                .read_miss(&mut self.l2s, core, line, self.cfg.read_policy);
            if let Some(h) = hit {
                if self.cfg.read_policy == ReadPolicy::Migrate {
                    self.l1s[h.from.index()].invalidate(line);
                }
            }
            hit
        };

        let latency = match remote {
            Some(hit) => {
                self.cores[i].counters.l2_remote_hits += 1;
                let was_spilled = hit.line.spilled;
                if was_spilled {
                    self.global.spill_hits += 1;
                }
                if P::ACTIVE {
                    self.probe.record(ObsEvent::RemoteHit {
                        requester: core,
                        owner: hit.from,
                        set,
                        was_spilled,
                    });
                }
                self.policy.note_remote_hit(hit.from, set, was_spilled);
                let state = if kind.is_store() {
                    MesiState::Modified
                } else {
                    hit.granted
                };
                let evicted = self.fill_l2(i, set, line, state, false, FillKind::Demand);
                if let Some(v) = evicted {
                    // §3.2 swap: the supplier's slot is free; if both lines
                    // are last copies, the victim moves into it.
                    let moved_out = kind.is_store() || self.cfg.read_policy == ReadPolicy::Migrate;
                    let victim_last = self.bus.holders(&self.l2s, v.addr).is_empty();
                    if self.policy.swap_enabled() && moved_out && requested_last_copy && victim_last
                    {
                        self.l1s[i].invalidate(v.addr);
                        let evicted2 = self.fill_l2(
                            hit.from.index(),
                            set,
                            v.addr,
                            v.state,
                            true,
                            FillKind::Spill,
                        );
                        self.global.swaps += 1;
                        if P::ACTIVE {
                            self.probe.record(ObsEvent::Swap {
                                requester: core,
                                supplier: hit.from,
                                set,
                            });
                        }
                        if let Some(v2) = evicted2 {
                            self.l1s[hit.from.index()].invalidate(v2.addr);
                            self.retire(hit.from.index(), v2);
                        }
                    } else {
                        self.dispose(i, set, v);
                    }
                }
                self.cfg.lat_l2_remote
            }
            None => {
                self.cores[i].counters.l2_mem += 1;
                self.cores[i].counters.offchip_fetches += 1;
                if P::ACTIVE {
                    self.probe.record(ObsEvent::MemFetch { core, set });
                }
                let state = if kind.is_store() {
                    MesiState::Modified
                } else {
                    self.bus.fetch_state(&self.l2s, core, line)
                };
                let evicted = self.fill_l2(i, set, line, state, false, FillKind::Demand);
                if let Some(v) = evicted {
                    self.dispose(i, set, v);
                }
                self.cfg.lat_mem
            }
        };
        self.train_prefetcher(i, stream, line);
        latency
    }

    /// A store hitting a line that is not Modified: invalidate any remote
    /// copies (upgrade) and mark Modified.
    fn upgrade_for_store(&mut self, i: usize, line: LineAddr) {
        match self.l2s[i].state_of(line) {
            Some(MesiState::Modified) => {}
            Some(MesiState::Exclusive) => {
                self.l2s[i].set_state(line, MesiState::Modified);
            }
            Some(MesiState::Shared) => {
                self.bus.write_miss(&mut self.l2s, CoreId(i as u8), line);
                for (j, l1) in self.l1s.iter_mut().enumerate() {
                    if j != i {
                        l1.invalidate(line);
                    }
                }
                self.l2s[i].set_state(line, MesiState::Modified);
            }
            // Inclusion guarantees the line is resident when called from a
            // hit path; a missing line means the write buffer drained after
            // an eviction raced it — the write simply goes to memory.
            None => {}
        }
    }

    fn fill_l2(
        &mut self,
        core: usize,
        set: SetIdx,
        addr: LineAddr,
        state: MesiState,
        spilled: bool,
        kind: FillKind,
    ) -> Option<CacheLine> {
        let id = CoreId(core as u8);
        let way = self
            .policy
            .choose_victim(id, set, kind, self.l2s[core].set(set));
        let pos = match kind {
            FillKind::Spill => self.policy.spill_insert_pos(id, set),
            FillKind::Demand => self.policy.demand_insert_pos(id, set),
            // Prefetched lines have unproven locality: insert deep so a
            // wrong guess costs little.
            FillKind::Prefetch => InsertPos::LruMinus1,
        };
        let line = CacheLine {
            addr,
            state,
            spilled,
        };
        self.l2s[core].fill_probed(id, set, way, line, pos, kind, &mut self.probe)
    }

    /// Handles a line evicted from `core`'s L2: back-invalidates the L1,
    /// and either spills it (policy decision on last copies) or retires it
    /// to memory.
    fn dispose(&mut self, core: usize, set: SetIdx, v: CacheLine) {
        self.l1s[core].invalidate(v.addr);
        let last_copy = self.bus.holders(&self.l2s, v.addr).is_empty();
        if !last_copy {
            // Another cache still holds the line; dropping a clean replica
            // is free (Modified implies sole ownership, so it cannot
            // happen here).
            debug_assert!(!v.state.is_dirty(), "dirty line with live replicas");
            return;
        }
        match self
            .policy
            .spill_decision(CoreId(core as u8), set, v.spilled)
        {
            SpillDecision::Spill(to) => {
                debug_assert_ne!(to.index(), core, "cannot spill to self");
                let evicted = self.fill_l2(to.index(), set, v.addr, v.state, true, FillKind::Spill);
                self.global.spills += 1;
                if P::ACTIVE {
                    self.probe.record(ObsEvent::Spill {
                        from: CoreId(core as u8),
                        to,
                        set,
                    });
                }
                if let Some(v2) = evicted {
                    self.l1s[to.index()].invalidate(v2.addr);
                    // No cascaded spills: the displaced line retires.
                    self.retire(to.index(), v2);
                }
            }
            SpillDecision::NoCandidate => {
                if P::ACTIVE {
                    self.probe.record(ObsEvent::SpillNoCandidate {
                        from: CoreId(core as u8),
                        set,
                    });
                }
                self.retire(core, v);
            }
            SpillDecision::NotSpiller => {
                self.retire(core, v);
            }
        }
    }

    /// The line leaves the chip: count the write-back if dirty.
    fn retire(&mut self, core: usize, v: CacheLine) {
        if v.state.is_dirty() {
            self.cores[core].counters.writebacks += 1;
            if P::ACTIVE {
                self.probe.record(ObsEvent::Writeback {
                    core: CoreId(core as u8),
                });
            }
        }
    }

    fn train_prefetcher(&mut self, i: usize, stream: u16, line: LineAddr) {
        if self.prefetchers.is_empty() {
            return;
        }
        self.pf_buf.clear();
        let mut buf = std::mem::take(&mut self.pf_buf);
        self.prefetchers[i].train(stream, line, &mut buf);
        for &pl in &buf {
            // Prefetch from memory only; skip lines already on chip.
            if !self.bus.holders(&self.l2s, pl).is_empty() || self.l2s[i].probe(pl).is_some() {
                continue;
            }
            let set = self.cfg.l2.set_of(pl);
            self.cores[i].counters.offchip_fetches += 1;
            let evicted = self.fill_l2(i, set, pl, MesiState::Exclusive, false, FillKind::Prefetch);
            if let Some(v) = evicted {
                self.dispose(i, set, v);
            }
        }
        self.pf_buf = buf;
    }
}

impl CoreState {
    fn cycles_add(&mut self, dc: f64) {
        self.clock += dc;
        self.counters.cycles += dc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_cache::PrivateBaseline;
    use cmp_trace::{CoreWorkload, CpuModel, CyclicStream};

    fn workload(base: u64, region: u64) -> CoreWorkload {
        CoreWorkload {
            label: format!("loop@{base:#x}"),
            cpu: CpuModel {
                mem_fraction: 0.25,
                base_cpi: 1.0,
                overlap: 1.0,
                store_fraction: 0.0,
            },
            stream: Box::new(CyclicStream::words(base, region, 0)),
        }
    }

    fn tiny_cfg(cores: usize) -> SystemConfig {
        let mut cfg = SystemConfig::table2(cores);
        cfg.l1 = cmp_cache::CacheGeometry::from_capacity(1 << 10, 2, 32).unwrap();
        cfg.l2 = cmp_cache::CacheGeometry::from_capacity(16 << 10, 4, 32).unwrap();
        cfg
    }

    #[test]
    fn small_loop_hits_l1_after_warmup() {
        // 512 B loop fits the 1 kB L1 entirely.
        let mut sys = CmpSystem::new(
            tiny_cfg(1),
            Box::new(PrivateBaseline::new()),
            vec![workload(0, 512)],
        );
        let r = sys.run(50_000, 10_000);
        assert_eq!(r.cores.len(), 1);
        let c = &r.cores[0];
        assert!(c.l1_hits as f64 / c.l1_accesses as f64 > 0.99, "l1 {c:?}");
        // CPI = base (1.0): no stalls.
        assert!((c.cpi() - 1.0).abs() < 0.05, "cpi {}", c.cpi());
        sys.assert_inclusive();
    }

    #[test]
    fn l2_sized_loop_misses_l1_hits_l2() {
        // 4 kB loop: thrashes the 1 kB L1, fits the 16 kB L2.
        let mut sys = CmpSystem::new(
            tiny_cfg(1),
            Box::new(PrivateBaseline::new()),
            vec![workload(0, 4 << 10)],
        );
        let r = sys.run(50_000, 10_000);
        let c = &r.cores[0];
        assert!(c.l2_accesses > 0);
        assert_eq!(c.l2_mem, 0, "everything must hit the L2 after warmup");
        assert_eq!(c.l2_remote_hits, 0);
        // CPI = base + f * (1/8 line miss rate) * 9 cycles.
        let expect = 1.0 + 0.25 * 0.125 * 9.0;
        assert!((c.cpi() - expect).abs() < 0.1, "cpi {}", c.cpi());
    }

    #[test]
    fn giant_loop_misses_to_memory() {
        let mut sys = CmpSystem::new(
            tiny_cfg(1),
            Box::new(PrivateBaseline::new()),
            vec![workload(0, 1 << 20)],
        );
        let r = sys.run(50_000, 10_000);
        let c = &r.cores[0];
        assert!(c.l2_mem > 0);
        assert!(c.l2_mpki() > 20.0, "mpki {}", c.l2_mpki());
        assert!(c.cpi() > 10.0, "memory-bound cpi {}", c.cpi());
        assert_eq!(c.offchip_fetches, c.l2_mem);
    }

    #[test]
    fn baseline_cores_are_isolated() {
        // Two cores in disjoint regions under the baseline: identical
        // workloads produce identical measured CPIs.
        let mut sys = CmpSystem::new(
            tiny_cfg(2),
            Box::new(PrivateBaseline::new()),
            vec![workload(0, 4 << 10), workload(1 << 30, 4 << 10)],
        );
        let r = sys.run(30_000, 5_000);
        assert!((r.cores[0].cpi() - r.cores[1].cpi()).abs() < 0.05);
        assert_eq!(r.spills, 0);
        assert_eq!(r.cores[0].l2_remote_hits, 0);
    }

    #[test]
    fn run_is_deterministic() {
        let go = || {
            let mut sys = CmpSystem::new(
                tiny_cfg(2),
                Box::new(PrivateBaseline::new()),
                vec![workload(0, 8 << 10), workload(1 << 30, 64 << 10)],
            );
            let r = sys.run(20_000, 5_000);
            (r.cores[0].cycles, r.cores[1].cycles, r.offchip_accesses())
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn writebacks_counted_for_dirty_evictions() {
        let mut w = workload(0, 1 << 20);
        w.cpu.store_fraction = 0.0;
        // All-store stream over a huge region: every line is dirtied and
        // eventually evicted dirty.
        let mut stores = workload(0, 1 << 20);
        stores.stream = Box::new(StoreEverything(CyclicStream::words(0, 1 << 20, 0)));
        let mut sys = CmpSystem::new(tiny_cfg(1), Box::new(PrivateBaseline::new()), vec![stores]);
        let r = sys.run(50_000, 10_000);
        assert!(r.cores[0].writebacks > 0, "{:?}", r.cores[0]);
    }

    struct StoreEverything(CyclicStream);
    impl cmp_trace::AccessStream for StoreEverything {
        fn next_access(&mut self) -> cmp_trace::Access {
            let mut a = self.0.next_access();
            a.kind = AccessKind::Store;
            a
        }
    }
}
