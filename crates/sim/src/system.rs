//! The CMP simulator: private two-level hierarchies over a snoop bus, an
//! analytical core timing model, and the spill/swap orchestration that the
//! LLC policies steer.
//!
//! ## Timing model
//!
//! Cores are modelled analytically (DESIGN.md substitution #2): committing
//! `n` instructions costs `n * base_cpi` cycles, and a load that misses in
//! L1 additionally stalls the core for the hierarchy latency scaled by the
//! benchmark's `overlap` factor (its memory-level parallelism). Stores are
//! buffered (write-through L1, write-back L2) and never stall. The
//! simulation interleaves cores at access granularity by always advancing
//! the core with the smallest clock, so caches observe a realistic global
//! interleaving of the competing access streams.
//!
//! ## Memory-system behaviour per L2 access
//!
//! 1. local hit (9 cycles): recency promoted, SSL/PSEL counters informed;
//! 2. remote hit (25 cycles): found by the MESI broadcast in a peer LLC;
//!    migrated home (multiprogrammed) or replicated (multithreaded). If the
//!    policy enables §3.2 swapping and both the requested line and the
//!    local victim are last copies, they exchange places;
//! 3. memory (460 cycles): fetched; the victim, if it was the last on-chip
//!    copy, is offered to the policy for spilling into a peer's same-index
//!    set.

use crate::config::SystemConfig;
use crate::metrics::{CoreResult, RunResult};
use cmp_cache::{
    AccessKind, AccessOutcome, Addr, CacheLine, CoreId, FillKind, InsertPos, LineAddr, LlcPolicy,
    MesiState, NullProbe, ObsEvent, ObsProbe, SetAssocCache, SetIdx, SpillDecision, SpillVictim,
    StridePrefetcher,
};
use cmp_coherence::{CoherenceFabric, Fabric, ReadPolicy};
use cmp_trace::{CoreSource, CoreWorkload};

/// `false` when `ASCC_BATCH=0` selects the per-access streaming interleave;
/// anything else (including unset) selects the batched event-loop
/// front-end. Read per call — deliberately *not* latched in a `OnceLock`,
/// so one process can time both front-ends (`sim_throughput` does).
pub fn batch_enabled() -> bool {
    std::env::var("ASCC_BATCH").map_or(true, |v| v != "0")
}

/// Accesses the batched engine looks ahead in the chunk when prefetching
/// the upcoming access's simulated L1 tag row.
const PF_DIST: usize = 8;

/// Accesses per adaptive-mode probe window: in drain mode the loop
/// accumulates this many accesses, then compares the mean drain length
/// against [`STEP_THRESHOLD`].
const PROBE_WINDOW: u64 = 2048;

/// Mean accesses per drain below which the per-drain machinery (horizon
/// scan, state copy in/out, chunk slice setup) no longer amortizes and
/// the loop switches to step mode.
const STEP_THRESHOLD: u64 = 4;

/// Accesses executed in step mode before the loop returns to drain mode
/// to re-probe. Re-probing costs one [`PROBE_WINDOW`] of (at worst)
/// drain-mode overhead per `STEP_RUN`, about 3% of the time at a ~30%
/// overhead — cheap insurance against the workload coarsening again.
const STEP_RUN: u64 = 1 << 16;

/// Batch-local mirror of the [`CoreState`] fields the per-access header
/// math touches: they live in registers for the length of a drain (and in
/// the dense [`DrainCore`] array between drains) and are flushed back to
/// the authoritative [`CoreState`] only where the outside world can look —
/// before hooks (which may snapshot) and at the end of the run.
#[derive(Clone, Copy)]
struct HotCore {
    clock: f64,
    carry: f64,
    cycles: f64,
    instrs: u64,
    l1_accesses: u64,
    l1_hits: u64,
}

impl HotCore {
    fn load(c: &CoreState) -> Self {
        HotCore {
            clock: c.clock,
            carry: c.carry,
            cycles: c.counters.cycles,
            instrs: c.counters.instrs,
            l1_accesses: c.counters.l1_accesses,
            l1_hits: c.counters.l1_hits,
        }
    }
}

/// Per-core scheduler state of the batched event loop, persistent across
/// drains. Drains shrink as the core count grows — the horizon is a min
/// over the peers, so at 16+ cores a drain is often one access — and any
/// work done per *drain* rather than per chunk shows up directly in
/// throughput. Everything lives in one dense struct (two cache lines per
/// core) instead of being re-derived from the scattered [`CoreState`]:
/// the [`HotCore`] mirror stays loaded (cores are flushed only at hooks
/// and at the end of the run), the CPU constants and warm-up/end
/// trackers are plain fields, and the current chunk run is cached so
/// [`run_slice`](cmp_trace::AccessFeed::run_slice)'s `Arc` clone and the
/// feed-cursor commit happen once per chunk, not once per drain.
struct DrainCore {
    hot: HotCore,
    cpu: cmp_trace::CpuModel,
    inv_mf: f64,
    warm_base: Option<u64>,
    ended: bool,
    /// The cached chunk run, `None` for streaming generators (and
    /// budget-degraded cursors, which only serve per-access pulls).
    chunk: Option<std::sync::Arc<cmp_trace::TraceChunk>>,
    /// Cached `chunk.len()`.
    len: usize,
    /// Next unconsumed access within `chunk`.
    pos: usize,
    /// Position the feed cursor has been advanced to. Commits are
    /// deferred: the cursor is synced to `pos` when the cached chunk is
    /// exhausted and before anything externally visible (hooks, the end
    /// of the run) — see [`CmpSystem::commit_feeds`].
    committed: usize,
}

impl DrainCore {
    fn load(c: &CoreState) -> Self {
        DrainCore {
            hot: HotCore::load(c),
            cpu: c.source.cpu,
            inv_mf: 1.0 / c.source.cpu.mem_fraction,
            warm_base: c.warm_snap.map(|w| w.instrs),
            ended: c.end_snap.is_some(),
            chunk: None,
            len: 0,
            pos: 0,
            committed: 0,
        }
    }
}

/// Refills a core's cached chunk run: syncs the feed cursor past the
/// consumed prefix of the old run, then caches the next one. Leaves
/// `chunk` as `None` for streaming generators and budget-degraded
/// cursors, which only serve per-access pulls.
fn refresh_chunk(d: &mut DrainCore, feed: &mut cmp_trace::AccessFeed) {
    if d.chunk.is_some() {
        feed.advance(d.pos - d.committed);
    }
    match feed.run_slice() {
        Some((chunk, pos)) => {
            d.len = chunk.len();
            d.chunk = Some(chunk);
            d.pos = pos;
            d.committed = pos;
        }
        None => {
            d.chunk = None;
            d.len = 0;
            d.pos = 0;
            d.committed = 0;
        }
    }
}

/// Why a batched drain stopped.
enum Pause {
    /// The cycle horizon was crossed: another core is now globally oldest.
    Resched,
    /// `hook_every` accesses elapsed; the hook must run.
    Hook,
    /// Every core captured its end snapshot; the run is complete.
    Done,
}

/// Whether the drained core still holds the schedule: its clock is below
/// the other cores' minimum, or ties it while having the smaller index —
/// exactly the condition under which the streaming loop's first-minimum
/// `min_by` would pick it again.
#[inline(always)]
pub(crate) fn holds_schedule(clock: f64, horizon: f64, wins_tie: bool) -> bool {
    match clock.total_cmp(&horizon) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Equal => wins_tie,
        std::cmp::Ordering::Greater => false,
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Counters {
    instrs: u64,
    cycles: f64,
    l1_accesses: u64,
    l1_hits: u64,
    l2_accesses: u64,
    l2_local_hits: u64,
    l2_remote_hits: u64,
    l2_mem: u64,
    offchip_fetches: u64,
    writebacks: u64,
}

struct CoreState {
    source: CoreSource,
    clock: f64,
    carry: f64,
    counters: Counters,
    warm_snap: Option<Counters>,
    end_snap: Option<Counters>,
}

#[derive(Clone, Copy, Debug, Default)]
struct GlobalCounters {
    spills: u64,
    swaps: u64,
    spill_hits: u64,
}

/// The multiprogrammed/multithreaded CMP simulator.
///
/// `CmpSystem` is generic over an [`ObsProbe`]: the default [`NullProbe`]
/// observes nothing and costs nothing (every emission site is gated on the
/// compile-time constant [`ObsProbe::ACTIVE`]), while an active probe —
/// e.g. [`EpochRecorder`](crate::EpochRecorder) — receives a typed
/// [`ObsEvent`] for every fill, eviction, spill, swap, remote hit and
/// policy adaptation, plus a [`PolicySnapshot`](cmp_cache::PolicySnapshot)
/// at every observation-epoch boundary.
pub struct CmpSystem<P: ObsProbe = NullProbe> {
    cfg: SystemConfig,
    l1s: Vec<SetAssocCache>,
    l2s: Vec<SetAssocCache>,
    fabric: Fabric,
    policy: Box<dyn LlcPolicy>,
    prefetchers: Vec<StridePrefetcher>,
    pf_buf: Vec<LineAddr>,
    cores: Vec<CoreState>,
    global: GlobalCounters,
    global_warm: Option<GlobalCounters>,
    probe: P,
    /// Global L2 accesses per observation epoch; 0 disables epochs.
    epoch_accesses: u64,
    epoch_counter: u64,
    epoch_index: u64,
    drain_buf: Vec<ObsEvent>,
}

impl<P: ObsProbe> std::fmt::Debug for CmpSystem<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CmpSystem")
            .field("cores", &self.cores.len())
            .field("policy", &self.policy.name())
            .field("observed", &P::ACTIVE)
            .finish()
    }
}

impl CmpSystem<NullProbe> {
    /// Builds an unobserved system running streaming `workloads` (one per
    /// core) under `policy`. This is the plain-generator path — tests and
    /// `trace_tool` use it with arbitrary custom streams; sweeps route
    /// through [`from_sources`](CmpSystem::from_sources) so shared
    /// materialized traces replay instead.
    ///
    /// # Panics
    ///
    /// Panics if `workloads.len() != cfg.cores`.
    pub fn new(
        cfg: SystemConfig,
        policy: Box<dyn LlcPolicy>,
        workloads: Vec<CoreWorkload>,
    ) -> Self {
        Self::from_sources(cfg, policy, workloads.into_iter().map(Into::into).collect())
    }

    /// Builds an unobserved system over per-core [`CoreSource`]s — the
    /// front-end the sweep uses, feeding each core from either a live
    /// generator or a shared materialized trace cursor.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len() != cfg.cores`.
    pub fn from_sources(
        cfg: SystemConfig,
        policy: Box<dyn LlcPolicy>,
        sources: Vec<CoreSource>,
    ) -> Self {
        Self::with_probe_sources(cfg, policy, sources, NullProbe, 0)
    }
}

impl<P: ObsProbe> CmpSystem<P> {
    /// Builds a system with an attached observation probe over streaming
    /// workloads (see [`with_probe_sources`](CmpSystem::with_probe_sources)
    /// for the source-based equivalent).
    ///
    /// `epoch_accesses` sets the observation-epoch length in *global* L2
    /// accesses: every `epoch_accesses` accesses the probe receives
    /// [`ObsProbe::on_epoch`] with a fresh policy snapshot (0 disables
    /// epoch callbacks; events still flow). Pass `&mut probe` to keep
    /// ownership of the probe at the call site.
    ///
    /// # Panics
    ///
    /// Panics if `workloads.len() != cfg.cores`.
    pub fn with_probe(
        cfg: SystemConfig,
        policy: Box<dyn LlcPolicy>,
        workloads: Vec<CoreWorkload>,
        probe: P,
        epoch_accesses: u64,
    ) -> Self {
        Self::with_probe_sources(
            cfg,
            policy,
            workloads.into_iter().map(Into::into).collect(),
            probe,
            epoch_accesses,
        )
    }

    /// Builds a probed system over per-core [`CoreSource`]s.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len() != cfg.cores`.
    pub fn with_probe_sources(
        cfg: SystemConfig,
        mut policy: Box<dyn LlcPolicy>,
        sources: Vec<CoreSource>,
        probe: P,
        epoch_accesses: u64,
    ) -> Self {
        assert_eq!(
            sources.len(),
            cfg.cores,
            "need exactly one workload per core"
        );
        policy.set_observed(P::ACTIVE);
        let l2_builder = || {
            let c = SetAssocCache::new(cfg.l2);
            if cfg.track_set_stats {
                c.with_set_stats()
            } else {
                c
            }
        };
        CmpSystem {
            l1s: (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l1)).collect(),
            l2s: (0..cfg.cores).map(|_| l2_builder()).collect(),
            fabric: Fabric::new(cfg.fabric, cfg.cores * cfg.l2.lines() as usize),
            prefetchers: cfg
                .prefetch
                .map(|p| (0..cfg.cores).map(|_| StridePrefetcher::new(p)).collect())
                .unwrap_or_default(),
            pf_buf: Vec::with_capacity(8),
            cores: sources
                .into_iter()
                .map(|w| CoreState {
                    source: w,
                    clock: 0.0,
                    carry: 0.0,
                    counters: Counters::default(),
                    warm_snap: None,
                    end_snap: None,
                })
                .collect(),
            policy,
            global: GlobalCounters::default(),
            global_warm: None,
            cfg,
            probe,
            epoch_accesses,
            epoch_counter: 0,
            epoch_index: 0,
            drain_buf: Vec::new(),
        }
    }

    /// The attached probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// The active policy.
    pub fn policy(&self) -> &dyn LlcPolicy {
        &*self.policy
    }

    /// A core's private L2 (e.g. for per-set statistics).
    pub fn l2(&self, core: CoreId) -> &SetAssocCache {
        &self.l2s[core.index()]
    }

    /// All private L2s, core order (e.g. for coherence checking).
    pub fn l2s(&self) -> &[SetAssocCache] {
        &self.l2s
    }

    /// All private L1s, core order (e.g. for lockstep state comparison).
    pub fn l1s(&self) -> &[SetAssocCache] {
        &self.l1s
    }

    /// The coherence fabric (for its statistics and kind).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Verifies L1 ⊆ L2 inclusion for every core (test helper).
    ///
    /// # Panics
    ///
    /// Panics if any L1 holds a line its own L2 does not.
    pub fn assert_inclusive(&self) {
        for (i, l1) in self.l1s.iter().enumerate() {
            for s in 0..l1.geometry().sets() {
                for (_, line) in l1.set(SetIdx(s)).iter() {
                    assert!(
                        self.l2s[i].probe(line.addr).is_some(),
                        "core {i}: L1 line {:?} missing from L2 (inclusion)",
                        line.addr
                    );
                }
            }
        }
    }

    /// Runs the workloads: each core first commits `warmup_instrs` (not
    /// measured), then `instr_target` measured instructions. Cores that
    /// finish keep executing — competing for cache space — until the last
    /// one is done, as in the paper's methodology (§5).
    ///
    /// Dispatches on the `ASCC_BATCH` knob between the batched event loop
    /// (default) and the per-access streaming interleave; the two are
    /// bit-identical (DESIGN.md §5h), so the choice is purely about
    /// throughput.
    pub fn run(&mut self, instr_target: u64, warmup_instrs: u64) -> RunResult {
        if batch_enabled() {
            self.run_batched(instr_target, warmup_instrs)
        } else {
            self.run_streaming(instr_target, warmup_instrs)
        }
    }

    /// [`run`](CmpSystem::run) forced onto the per-access streaming
    /// interleave, regardless of `ASCC_BATCH`. The equivalence tests use
    /// this explicit pair rather than racing env-var mutations across test
    /// threads.
    pub fn run_streaming(&mut self, instr_target: u64, warmup_instrs: u64) -> RunResult {
        self.run_with_hook(instr_target, warmup_instrs, |_| {})
    }

    /// [`run`](CmpSystem::run) forced onto the batched event loop,
    /// regardless of `ASCC_BATCH`.
    pub fn run_batched(&mut self, instr_target: u64, warmup_instrs: u64) -> RunResult {
        self.try_run_batched(instr_target, warmup_instrs, 0, |_| true)
            .expect("an always-continue hook cannot abort the run")
    }

    /// The batched event loop: drains whole [`TraceChunk`](cmp_trace::TraceChunk)
    /// runs per core instead of re-scheduling after every access, while
    /// producing the exact access interleaving of the streaming loop.
    ///
    /// The scheduled core is the one the streaming `min_by` would pick
    /// (first-minimum clock). It keeps draining while
    /// [`holds_schedule`] says the streaming scheduler would keep picking
    /// it — its clock stays below the *cycle horizon* (the minimum clock of
    /// the other cores, which cannot move during the drain: spill
    /// retirement only touches peers' writeback counters). Inside a drain
    /// the per-access header math runs on a register-local [`HotCore`]
    /// (one reciprocal hoists the `mem_fraction` divide), accesses come
    /// straight out of the chunk's SoA arrays, and upcoming tag rows are
    /// prefetched [`PF_DIST`] accesses ahead.
    ///
    /// Drains shrink as cores are added — the horizon is a min over the
    /// peers — and at 16+ cores they degenerate to single accesses, where
    /// the per-drain machinery is pure overhead. The loop is therefore
    /// *adaptive*: every [`PROBE_WINDOW`] accesses it measures the mean
    /// drain length, and below [`STEP_THRESHOLD`] it switches to *step
    /// mode* for the next [`STEP_RUN`] accesses — single-access
    /// first-minimum picks with no horizon computation, no drain
    /// entry/exit, and the accesses still served from the cached chunk
    /// run. Both modes execute identical arithmetic in the identical
    /// first-minimum order, so the interleaving (and every counter) stays
    /// bit-identical to the streaming loop regardless of where the mode
    /// switches land; the switch points themselves are access-count
    /// driven and thus deterministic.
    ///
    /// `hook` runs with flushed, snapshot-able state after every
    /// `hook_every` global accesses (`0` = never) — the batched analogue
    /// of [`try_run_with_hook`](CmpSystem::try_run_with_hook)'s per-access
    /// cadence, used for `ASCC_CKPT_EVERY` checkpoints and cancellation.
    /// Returning `false` abandons the run (`None`), leaving the system in
    /// the consistent state the hook observed.
    pub fn try_run_batched(
        &mut self,
        instr_target: u64,
        warmup_instrs: u64,
        hook_every: u64,
        mut hook: impl FnMut(&mut Self) -> bool,
    ) -> Option<RunResult> {
        assert!(instr_target > 0, "need a nonzero instruction target");
        let hook_period = if hook_every == 0 {
            u64::MAX
        } else {
            hook_every
        };
        let mut until_hook = hook_period;
        // The per-drain machinery is the whole ballgame at high core
        // counts (see [`DrainCore`]): per-core scheduler state persists
        // across drains in dense structs, the scheduler is one fused pass
        // over a compact clock mirror (see
        // [`sched::argmin_and_horizon`](crate::sched) for the
        // first-minimum tie-break contract), cores are flushed only at
        // hooks and at the end of the run, and when a probe window shows
        // drains have degenerated to single accesses the loop drops into
        // step mode (see the doc comment above). Hooks take `&mut Self`
        // and may move anything, so every mirror is rebuilt after one
        // fires.
        let offset_bits = self.cfg.l1.offset_bits();
        let mut drain: Vec<DrainCore> = self.cores.iter().map(DrainCore::load).collect();
        let mut clocks: Vec<f64> = drain.iter().map(|d| d.hot.clock).collect();
        // Adaptive-mode state: accesses and drains seen in the current
        // probe window, and accesses left in the current step-mode run.
        let mut probe_acc: u64 = 0;
        let mut probe_drains: u64 = 0;
        let mut step_left: u64 = 0;
        'sched: loop {
            // Step mode: drains have degenerated to ~single accesses, so
            // skip the horizon and the drain entry/exit entirely — pick
            // the first-minimum core and execute exactly one access from
            // its cached run, operating on the dense DrainCore in place.
            while step_left > 0 {
                let i = crate::sched::argmin(&clocks);
                if drain[i].pos >= drain[i].len {
                    refresh_chunk(&mut drain[i], &mut self.cores[i].source.feed);
                }
                let d = &mut drain[i];
                let (addr, kind, stream) = if let Some(chunk) = &d.chunk {
                    let idx = d.pos;
                    d.pos = idx + 1;
                    let kind = if chunk.store_words()[idx >> 6] >> (idx & 63) & 1 == 1 {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    };
                    (Addr::new(chunk.addrs()[idx]), kind, chunk.streams()[idx])
                } else {
                    let acc = self.cores[i].source.feed.next_access();
                    (acc.addr, acc.kind, acc.stream)
                };
                self.batched_access(i, &mut d.hot, d.inv_mf, &d.cpu, addr, kind, stream);
                clocks[i] = d.hot.clock;
                step_left -= 1;
                let pause = self.batched_bookkeeping(
                    i,
                    &d.hot,
                    instr_target,
                    warmup_instrs,
                    &mut d.warm_base,
                    &mut d.ended,
                    &mut until_hook,
                );
                match pause {
                    None => {}
                    Some(Pause::Resched) => unreachable!("step mode holds no horizon to lose"),
                    Some(Pause::Done) => {
                        self.commit_feeds(&mut drain);
                        break 'sched;
                    }
                    Some(Pause::Hook) => {
                        self.commit_feeds(&mut drain);
                        until_hook = hook_period;
                        if !hook(self) {
                            return None;
                        }
                        for (j, c) in self.cores.iter().enumerate() {
                            drain[j] = DrainCore::load(c);
                            clocks[j] = c.clock;
                        }
                        // The hook may have moved anything — re-probe.
                        step_left = 0;
                        probe_acc = 0;
                        probe_drains = 0;
                    }
                }
            }
            let (i, horizon, jfirst) = crate::sched::argmin_and_horizon(&clocks);
            let wins_tie = i < jfirst;
            let cpu = drain[i].cpu;
            let inv_mf = drain[i].inv_mf;
            let mut h = drain[i].hot;
            let mut warm_base = drain[i].warm_base;
            let mut ended = drain[i].ended;
            let acc_base = h.l1_accesses;
            let pause = 'drain: loop {
                if drain[i].pos >= drain[i].len {
                    refresh_chunk(&mut drain[i], &mut self.cores[i].source.feed);
                }
                let Some(chunk) = &drain[i].chunk else {
                    // Streaming generator (or budget-degraded cursor):
                    // per-access pulls, still horizon-batched.
                    loop {
                        if !holds_schedule(h.clock, horizon, wins_tie) {
                            break 'drain Pause::Resched;
                        }
                        let acc = self.cores[i].source.feed.next_access();
                        self.batched_access(
                            i, &mut h, inv_mf, &cpu, acc.addr, acc.kind, acc.stream,
                        );
                        if let Some(p) = self.batched_bookkeeping(
                            i,
                            &h,
                            instr_target,
                            warmup_instrs,
                            &mut warm_base,
                            &mut ended,
                            &mut until_hook,
                        ) {
                            break 'drain p;
                        }
                    }
                };
                let len = drain[i].len;
                let addrs = chunk.addrs();
                let streams = chunk.streams();
                let stores = chunk.store_words();
                let mut idx = drain[i].pos;
                let mut pause = None;
                while idx < len {
                    if !holds_schedule(h.clock, horizon, wins_tie) {
                        pause = Some(Pause::Resched);
                        break;
                    }
                    if idx + PF_DIST < len {
                        let ahead = Addr::new(addrs[idx + PF_DIST]).line(offset_bits);
                        self.l1s[i].prefetch_set(self.cfg.l1.set_of(ahead));
                    }
                    let addr = Addr::new(addrs[idx]);
                    let stream = streams[idx];
                    let kind = if stores[idx >> 6] >> (idx & 63) & 1 == 1 {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    };
                    idx += 1;
                    self.batched_access(i, &mut h, inv_mf, &cpu, addr, kind, stream);
                    if let Some(p) = self.batched_bookkeeping(
                        i,
                        &h,
                        instr_target,
                        warmup_instrs,
                        &mut warm_base,
                        &mut ended,
                        &mut until_hook,
                    ) {
                        pause = Some(p);
                        break;
                    }
                }
                drain[i].pos = idx;
                match pause {
                    Some(p) => break 'drain p,
                    None => continue 'drain, // chunk exhausted mid-drain
                }
            };
            let d = &mut drain[i];
            d.hot = h;
            d.warm_base = warm_base;
            d.ended = ended;
            clocks[i] = h.clock;
            // Probe accounting: a window's mean drain length decides
            // whether the next STEP_RUN accesses run in step mode.
            probe_acc += h.l1_accesses - acc_base;
            probe_drains += 1;
            if probe_acc >= PROBE_WINDOW {
                if probe_acc < probe_drains * STEP_THRESHOLD {
                    step_left = STEP_RUN;
                }
                probe_acc = 0;
                probe_drains = 0;
            }
            match pause {
                Pause::Resched => {}
                Pause::Done => {
                    self.commit_feeds(&mut drain);
                    break 'sched;
                }
                Pause::Hook => {
                    self.commit_feeds(&mut drain);
                    until_hook = hook_period;
                    if !hook(self) {
                        return None;
                    }
                    // The hook holds `&mut Self` and may have moved
                    // anything (e.g. restoring a snapshot): reload the
                    // mirrors and drop every cache rather than trust the
                    // incremental state.
                    for (j, c) in self.cores.iter().enumerate() {
                        drain[j] = DrainCore::load(c);
                        clocks[j] = c.clock;
                    }
                    step_left = 0;
                    probe_acc = 0;
                    probe_drains = 0;
                }
            }
        }
        Some(self.result())
    }

    /// Makes the batched loop's deferred state externally visible: every
    /// core's [`HotCore`] mirror is flushed and every feed cursor synced
    /// to its cached chunk position. Run before anything that observes
    /// the system as a whole — hooks (which may snapshot) and the end of
    /// the run.
    fn commit_feeds(&mut self, drain: &mut [DrainCore]) {
        for (j, d) in drain.iter_mut().enumerate() {
            if d.chunk.is_some() && d.pos > d.committed {
                self.cores[j].source.feed.advance(d.pos - d.committed);
                d.committed = d.pos;
            }
            self.flush_hot(j, &d.hot);
        }
    }

    /// Writes a drain's register-local [`HotCore`] back into the core's
    /// authoritative state.
    fn flush_hot(&mut self, i: usize, h: &HotCore) {
        let c = &mut self.cores[i];
        c.clock = h.clock;
        c.carry = h.carry;
        c.counters.cycles = h.cycles;
        c.counters.instrs = h.instrs;
        c.counters.l1_accesses = h.l1_accesses;
        c.counters.l1_hits = h.l1_hits;
    }

    /// One access of the batched loop: identical arithmetic to
    /// [`step`](CmpSystem::step), but the header math (carry/CPI/clock and
    /// the L1 counters) runs on the drain's [`HotCore`] and the
    /// `mem_fraction` divide is a pre-inverted multiply.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)] // private hot path; the args are the drain's registers
    fn batched_access(
        &mut self,
        i: usize,
        h: &mut HotCore,
        inv_mf: f64,
        cpu: &cmp_trace::CpuModel,
        addr: Addr,
        kind: AccessKind,
        stream: u16,
    ) {
        h.carry += inv_mf;
        let n = (h.carry as u64).max(1);
        h.carry -= n as f64;
        h.instrs += n;
        let dc = n as f64 * cpu.base_cpi;
        h.clock += dc;
        h.cycles += dc;
        h.l1_accesses += 1;
        let line = addr.line(self.cfg.l1.offset_bits());
        let l1_hit = self.l1s[i].access(line).is_some();
        let latency = if l1_hit {
            h.l1_hits += 1;
            if kind.is_store() {
                self.upgrade_for_store(i, line);
            }
            0
        } else {
            let (lat, fill_l1) = self.l2_access(i, line, kind, stream);
            if fill_l1 {
                let set = self.cfg.l1.set_of(line);
                let way = self.l1s[i].set(set).default_victim();
                self.l1s[i].fill(
                    set,
                    way,
                    CacheLine::demand(line, MesiState::Exclusive),
                    InsertPos::Mru,
                    FillKind::Demand,
                );
            }
            lat
        };
        if !kind.is_store() && latency > 0 {
            let stall = latency as f64 * cpu.overlap;
            h.clock += stall;
            h.cycles += stall;
        }
        self.policy.on_cycle(CoreId(i as u8), h.clock as u64);
        if P::ACTIVE {
            self.forward_policy_events();
            if self.epoch_accesses > 0 && self.epoch_counter >= self.epoch_accesses {
                self.epoch_counter -= self.epoch_accesses;
                let snap = self.policy.snapshot();
                self.probe.on_epoch(self.epoch_index, &snap);
                self.epoch_index += 1;
            }
        }
        #[cfg(feature = "debug-invariants")]
        {
            self.flush_hot(i, h);
            self.debug_check_invariants();
        }
    }

    /// Post-access warm-up/end/hook bookkeeping for the batched loop;
    /// returns the pause the drain must take, if any. Mirrors the
    /// streaming loop's per-access checks; snapshots are captured from
    /// freshly flushed counters.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn batched_bookkeeping(
        &mut self,
        i: usize,
        h: &HotCore,
        instr_target: u64,
        warmup_instrs: u64,
        warm_base: &mut Option<u64>,
        ended: &mut bool,
        until_hook: &mut u64,
    ) -> Option<Pause> {
        if warm_base.is_none() && h.instrs >= warmup_instrs {
            self.flush_hot(i, h);
            let c = &mut self.cores[i];
            c.warm_snap = Some(c.counters);
            *warm_base = Some(c.counters.instrs);
            if self.global_warm.is_none() && self.cores.iter().all(|c| c.warm_snap.is_some()) {
                self.global_warm = Some(self.global);
            }
        }
        if let Some(w) = *warm_base {
            if !*ended && h.instrs - w >= instr_target {
                self.flush_hot(i, h);
                let c = &mut self.cores[i];
                c.end_snap = Some(c.counters);
                *ended = true;
                // End snapshots never unset, so the all-done transition can
                // only happen on the access that captures the last one —
                // checking here is equivalent to the streaming loop's
                // every-access scan.
                if self.cores.iter().all(|c| c.end_snap.is_some()) {
                    return Some(Pause::Done);
                }
            }
        }
        *until_hook -= 1;
        if *until_hook == 0 {
            return Some(Pause::Hook);
        }
        None
    }

    /// [`run`](CmpSystem::run) with a periodic-checkpoint hook: `after_step`
    /// is called after every access (and its warm-up/end bookkeeping) except
    /// the final one, with the system in a consistent snapshot-able state.
    ///
    /// The checkpointed `run_mix` path uses this to call
    /// [`snapshot`](CmpSystem::snapshot) every `ASCC_CKPT_EVERY` accesses;
    /// tests use it to capture mid-run state at arbitrary access indices.
    pub fn run_with_hook(
        &mut self,
        instr_target: u64,
        warmup_instrs: u64,
        mut after_step: impl FnMut(&mut Self),
    ) -> RunResult {
        self.try_run_with_hook(instr_target, warmup_instrs, |sys| {
            after_step(sys);
            true
        })
        .expect("an always-continue hook cannot abort the run")
    }

    /// [`run_with_hook`](CmpSystem::run_with_hook) with cooperative
    /// cancellation: the hook returns `true` to continue or `false` to
    /// abandon the run, in which case the call returns `None` and no
    /// measurement is produced. The system is left in the consistent
    /// snapshot-able state the hook observed, so an aborted run can still
    /// be checkpointed or inspected.
    ///
    /// An uncancelled run is step-for-step identical to
    /// [`run`](CmpSystem::run).
    pub fn try_run_with_hook(
        &mut self,
        instr_target: u64,
        warmup_instrs: u64,
        mut after_step: impl FnMut(&mut Self) -> bool,
    ) -> Option<RunResult> {
        assert!(instr_target > 0, "need a nonzero instruction target");
        loop {
            // Advance the globally-oldest core by one memory access.
            let i = self
                .cores
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.clock.total_cmp(&b.1.clock))
                .map(|(i, _)| i)
                .expect("at least one core");
            self.step(i);

            let c = &mut self.cores[i];
            if c.warm_snap.is_none() && c.counters.instrs >= warmup_instrs {
                c.warm_snap = Some(c.counters);
                if self.global_warm.is_none() && self.cores.iter().all(|c| c.warm_snap.is_some()) {
                    self.global_warm = Some(self.global);
                }
            }
            let c = &mut self.cores[i];
            if let Some(w) = c.warm_snap {
                if c.end_snap.is_none() && c.counters.instrs - w.instrs >= instr_target {
                    c.end_snap = Some(c.counters);
                }
            }
            if self.cores.iter().all(|c| c.end_snap.is_some()) {
                break;
            }
            if !after_step(self) {
                return None;
            }
        }
        Some(self.result())
    }

    fn result(&self) -> RunResult {
        let cores = self
            .cores
            .iter()
            .map(|c| {
                let w = c.warm_snap.expect("run() sets snapshots");
                let e = c.end_snap.expect("run() sets snapshots");
                CoreResult {
                    label: c.source.label.clone(),
                    instrs: e.instrs - w.instrs,
                    cycles: e.cycles - w.cycles,
                    l2_accesses: e.l2_accesses - w.l2_accesses,
                    l2_local_hits: e.l2_local_hits - w.l2_local_hits,
                    l2_remote_hits: e.l2_remote_hits - w.l2_remote_hits,
                    l2_mem: e.l2_mem - w.l2_mem,
                    offchip_fetches: e.offchip_fetches - w.offchip_fetches,
                    writebacks: e.writebacks - w.writebacks,
                    l1_accesses: e.l1_accesses - w.l1_accesses,
                    l1_hits: e.l1_hits - w.l1_hits,
                }
            })
            .collect();
        let gw = self.global_warm.unwrap_or_default();
        RunResult {
            policy: self.policy.name().to_string(),
            cores,
            spills: self.global.spills - gw.spills,
            swaps: self.global.swaps - gw.swaps,
            spill_hits: self.global.spill_hits - gw.spill_hits,
        }
    }

    /// Total simulated L1 accesses across every core since construction
    /// (warm-up included) — the numerator live-throughput observers divide
    /// by wall-clock time. Only consistent outside a batched drain, i.e.
    /// from run hooks or after a run returns.
    pub fn total_accesses(&self) -> u64 {
        self.cores.iter().map(|c| c.counters.l1_accesses).sum()
    }

    /// Counters accumulated since construction, with *no* warm-up
    /// subtraction — the whole-lifetime view, usable at any point.
    ///
    /// This is the aggregate an event stream reconciles against: probes
    /// observe every event from cycle zero, so their totals match
    /// `lifetime_result()`, not the warm-up-windowed [`run`](CmpSystem::run)
    /// result.
    pub fn lifetime_result(&self) -> RunResult {
        let cores = self
            .cores
            .iter()
            .map(|c| {
                let e = c.counters;
                CoreResult {
                    label: c.source.label.clone(),
                    instrs: e.instrs,
                    cycles: e.cycles,
                    l2_accesses: e.l2_accesses,
                    l2_local_hits: e.l2_local_hits,
                    l2_remote_hits: e.l2_remote_hits,
                    l2_mem: e.l2_mem,
                    offchip_fetches: e.offchip_fetches,
                    writebacks: e.writebacks,
                    l1_accesses: e.l1_accesses,
                    l1_hits: e.l1_hits,
                }
            })
            .collect();
        RunResult {
            policy: self.policy.name().to_string(),
            cores,
            spills: self.global.spills,
            swaps: self.global.swaps,
            spill_hits: self.global.spill_hits,
        }
    }

    /// Advances core `i` by one memory access (public for fine-grained
    /// tests).
    pub fn step(&mut self, i: usize) {
        let acc = self.cores[i].source.feed.next_access();
        let cpu = self.cores[i].source.cpu;
        {
            let c = &mut self.cores[i];
            c.carry += 1.0 / cpu.mem_fraction;
            let n = (c.carry as u64).max(1);
            c.carry -= n as f64;
            c.counters.instrs += n;
            c.cycles_add(n as f64 * cpu.base_cpi);
            c.counters.l1_accesses += 1;
        }
        let line = acc.addr.line(self.cfg.l1.offset_bits());
        let l1_hit = self.l1s[i].access(line).is_some();
        let latency = if l1_hit {
            self.cores[i].counters.l1_hits += 1;
            if acc.kind.is_store() {
                // Write-through below L1 with a coalescing write buffer:
                // the L2 copy's state is updated (dirtiness, coherence
                // upgrade) but the buffered write does not occupy the L2 —
                // no recency promotion, no statistics, no policy event.
                self.upgrade_for_store(i, line);
            }
            0
        } else {
            let (lat, fill_l1) = self.l2_access(i, line, acc.kind, acc.stream);
            if fill_l1 {
                // Fill L1 (evictions are silent: write-through keeps L1 clean).
                let set = self.cfg.l1.set_of(line);
                let way = self.l1s[i].set(set).default_victim();
                self.l1s[i].fill(
                    set,
                    way,
                    CacheLine::demand(line, MesiState::Exclusive),
                    InsertPos::Mru,
                    FillKind::Demand,
                );
            }
            lat
        };
        let c = &mut self.cores[i];
        if !acc.kind.is_store() && latency > 0 {
            c.cycles_add(latency as f64 * cpu.overlap);
        }
        let clock = c.clock as u64;
        self.policy.on_cycle(CoreId(i as u8), clock);
        if P::ACTIVE {
            self.forward_policy_events();
            if self.epoch_accesses > 0 && self.epoch_counter >= self.epoch_accesses {
                self.epoch_counter -= self.epoch_accesses;
                let snap = self.policy.snapshot();
                self.probe.on_epoch(self.epoch_index, &snap);
                self.epoch_index += 1;
            }
        }
        #[cfg(feature = "debug-invariants")]
        self.debug_check_invariants();
    }

    /// Full structural-invariant sweep, run after every step under the
    /// `debug-invariants` feature.
    ///
    /// # Panics
    ///
    /// Panics on any MESI, recency, spilled-last-copy or policy-internal
    /// invariant violation.
    #[cfg(feature = "debug-invariants")]
    fn debug_check_invariants(&self) {
        let mut problems: Vec<String> = cmp_coherence::check_mesi(&self.l2s)
            .iter()
            .map(|v| v.to_string())
            .collect();
        problems.extend(
            cmp_coherence::check_recency(&self.l1s)
                .iter()
                .chain(cmp_coherence::check_recency(&self.l2s).iter())
                .map(|v| v.to_string()),
        );
        // Replication grants replicas while the supplier keeps its spilled
        // copy, so the last-copy property only holds under migration.
        if self.cfg.read_policy == ReadPolicy::Migrate {
            problems.extend(
                cmp_coherence::check_spilled_last_copies(&self.l2s)
                    .iter()
                    .map(|v| v.to_string()),
            );
        }
        problems.extend(self.policy.check_invariants());
        assert!(
            problems.is_empty(),
            "invariants violated after step: {}",
            problems.join("; ")
        );
    }

    /// Moves any events the policy buffered during this step into the
    /// probe (policy events interleave with the simulator's own in
    /// emission order within a step).
    fn forward_policy_events(&mut self) {
        let mut buf = std::mem::take(&mut self.drain_buf);
        self.policy.drain_events(&mut buf);
        for ev in buf.drain(..) {
            self.probe.record(ev);
        }
        self.drain_buf = buf;
    }

    /// One L2 access; returns its full (unoverlapped) latency in cycles and
    /// whether the line should be filled into the L1 (`false` only when an
    /// admission filter bypassed the hierarchy for this fetch).
    fn l2_access(
        &mut self,
        i: usize,
        line: LineAddr,
        kind: AccessKind,
        stream: u16,
    ) -> (u32, bool) {
        let set = self.cfg.l2.set_of(line);
        self.cores[i].counters.l2_accesses += 1;
        if P::ACTIVE {
            self.epoch_counter += 1;
        }
        let core = CoreId(i as u8);

        // Hit path: compute the pre-promotion outcome for the policy.
        if let Some((s, w)) = self.l2s[i].probe(line) {
            let (depth, spilled) = {
                let cs = self.l2s[i].set(s);
                (cs.depth_of(w) as u16, cs.line(w).expect("valid").spilled)
            };
            self.l2s[i].access(line);
            if spilled {
                self.global.spill_hits += 1;
            }
            if P::ACTIVE {
                self.probe.record(ObsEvent::LocalHit { core, set, spilled });
            }
            let outcome = AccessOutcome::Hit { spilled, depth };
            self.policy.record_access(core, set, outcome);
            self.policy.note_access(core, line, set, outcome, Some(w));
            if kind.is_store() {
                self.upgrade_for_store(i, line);
            }
            self.cores[i].counters.l2_local_hits += 1;
            self.train_prefetcher(i, stream, line);
            return (self.cfg.lat_l2_local, true);
        }

        // Miss path.
        self.l2s[i].access(line);
        if P::ACTIVE {
            self.probe.record(ObsEvent::Miss { core, set });
        }
        self.policy.record_access(core, set, AccessOutcome::Miss);
        self.policy
            .note_access(core, line, set, AccessOutcome::Miss, None);
        let requested_last_copy = self.fabric.holder_count(&self.l2s, line) == 1;

        let remote = if kind.is_store() {
            let hit = self.fabric.write_miss(&mut self.l2s, core, line);
            if hit.is_some() {
                // Every remote copy vanished: keep the L1s inclusive.
                for (j, l1) in self.l1s.iter_mut().enumerate() {
                    if j != i {
                        l1.invalidate(line);
                    }
                }
            }
            hit
        } else {
            let hit = self
                .fabric
                .read_miss(&mut self.l2s, core, line, self.cfg.read_policy);
            if let Some(h) = hit {
                if self.cfg.read_policy == ReadPolicy::Migrate {
                    self.l1s[h.from.index()].invalidate(line);
                }
            }
            hit
        };

        let mut fill_l1 = true;
        let latency = match remote {
            Some(hit) => {
                self.cores[i].counters.l2_remote_hits += 1;
                let was_spilled = hit.line.spilled;
                if was_spilled {
                    self.global.spill_hits += 1;
                }
                if P::ACTIVE {
                    self.probe.record(ObsEvent::RemoteHit {
                        requester: core,
                        owner: hit.from,
                        set,
                        was_spilled,
                    });
                }
                self.policy.note_remote_hit(hit.from, set, was_spilled);
                let state = if kind.is_store() {
                    MesiState::Modified
                } else {
                    hit.granted
                };
                let evicted = self.fill_l2(i, set, line, state, false, FillKind::Demand);
                if let Some(v) = evicted {
                    // §3.2 swap: the supplier's slot is free; if both lines
                    // are last copies, the victim moves into it.
                    let moved_out = kind.is_store() || self.cfg.read_policy == ReadPolicy::Migrate;
                    let victim_last = self.fabric.holder_count(&self.l2s, v.addr) == 0;
                    if self.policy.swap_enabled() && moved_out && requested_last_copy && victim_last
                    {
                        self.l1s[i].invalidate(v.addr);
                        let evicted2 = self.fill_l2(
                            hit.from.index(),
                            set,
                            v.addr,
                            v.state,
                            true,
                            FillKind::Spill,
                        );
                        self.global.swaps += 1;
                        if P::ACTIVE {
                            self.probe.record(ObsEvent::Swap {
                                requester: core,
                                supplier: hit.from,
                                set,
                            });
                        }
                        if let Some(v2) = evicted2 {
                            self.l1s[hit.from.index()].invalidate(v2.addr);
                            self.retire(hit.from.index(), v2);
                        }
                    } else {
                        self.dispose(i, set, v);
                    }
                }
                self.cfg.lat_l2_remote
            }
            None => {
                self.cores[i].counters.l2_mem += 1;
                self.cores[i].counters.offchip_fetches += 1;
                if P::ACTIVE {
                    self.probe.record(ObsEvent::MemFetch { core, set });
                }
                let state = if kind.is_store() {
                    MesiState::Modified
                } else {
                    self.fabric.fetch_state(&self.l2s, core, line)
                };
                // Admission gate (TinyLFU-style filters): a rejected fetch
                // is delivered to the core but enters neither cache level.
                if self
                    .policy
                    .admit_fill(core, set, line, self.l2s[i].set(set))
                {
                    let evicted = self.fill_l2(i, set, line, state, false, FillKind::Demand);
                    if let Some(v) = evicted {
                        self.dispose(i, set, v);
                    }
                } else {
                    fill_l1 = false;
                }
                self.cfg.lat_mem
            }
        };
        self.train_prefetcher(i, stream, line);
        (latency, fill_l1)
    }

    /// A store hitting a line that is not Modified: invalidate any remote
    /// copies (upgrade) and mark Modified.
    fn upgrade_for_store(&mut self, i: usize, line: LineAddr) {
        match self.l2s[i].state_of(line) {
            Some(MesiState::Modified) => {}
            Some(MesiState::Exclusive) => {
                self.l2s[i].set_state(line, MesiState::Modified);
            }
            Some(MesiState::Shared) => {
                self.fabric.write_miss(&mut self.l2s, CoreId(i as u8), line);
                for (j, l1) in self.l1s.iter_mut().enumerate() {
                    if j != i {
                        l1.invalidate(line);
                    }
                }
                self.l2s[i].set_state(line, MesiState::Modified);
            }
            // Inclusion guarantees the line is resident when called from a
            // hit path; a missing line means the write buffer drained after
            // an eviction raced it — the write simply goes to memory.
            None => {}
        }
    }

    fn fill_l2(
        &mut self,
        core: usize,
        set: SetIdx,
        addr: LineAddr,
        state: MesiState,
        spilled: bool,
        kind: FillKind,
    ) -> Option<CacheLine> {
        let id = CoreId(core as u8);
        let way = self
            .policy
            .choose_victim(id, set, kind, self.l2s[core].set(set));
        let pos = match kind {
            FillKind::Spill => self.policy.spill_insert_pos(id, set),
            FillKind::Demand => self.policy.demand_insert_pos(id, set),
            // Prefetched lines have unproven locality: insert deep so a
            // wrong guess costs little.
            FillKind::Prefetch => InsertPos::LruMinus1,
        };
        let line = CacheLine {
            addr,
            state,
            spilled,
        };
        let evicted = self.l2s[core].fill_probed(id, set, way, line, pos, kind, &mut self.probe);
        // Every L2 content change routes through here, so these two calls
        // keep the directory's sharer masks exact.
        if let Some(v) = &evicted {
            self.fabric.note_evict(id, v.addr);
        }
        self.fabric.note_fill(id, addr);
        evicted
    }

    /// Handles a line evicted from `core`'s L2: back-invalidates the L1,
    /// and either spills it (policy decision on last copies) or retires it
    /// to memory.
    fn dispose(&mut self, core: usize, set: SetIdx, v: CacheLine) {
        self.l1s[core].invalidate(v.addr);
        let last_copy = self.fabric.holder_count(&self.l2s, v.addr) == 0;
        if !last_copy {
            // Another cache still holds the line; dropping a clean replica
            // is free (Modified implies sole ownership, so it cannot
            // happen here).
            debug_assert!(!v.state.is_dirty(), "dirty line with live replicas");
            return;
        }
        let victim = SpillVictim {
            addr: v.addr,
            spilled: v.spilled,
            dirty: v.state.is_dirty(),
        };
        match self.policy.spill_decision(CoreId(core as u8), set, victim) {
            SpillDecision::Spill(to) => {
                debug_assert_ne!(to.index(), core, "cannot spill to self");
                let evicted = self.fill_l2(to.index(), set, v.addr, v.state, true, FillKind::Spill);
                self.global.spills += 1;
                if P::ACTIVE {
                    self.probe.record(ObsEvent::Spill {
                        from: CoreId(core as u8),
                        to,
                        set,
                    });
                }
                if let Some(v2) = evicted {
                    self.l1s[to.index()].invalidate(v2.addr);
                    // No cascaded spills: the displaced line retires.
                    self.retire(to.index(), v2);
                }
            }
            SpillDecision::NoCandidate => {
                if P::ACTIVE {
                    self.probe.record(ObsEvent::SpillNoCandidate {
                        from: CoreId(core as u8),
                        set,
                    });
                }
                self.retire(core, v);
            }
            SpillDecision::NotSpiller => {
                self.retire(core, v);
            }
        }
    }

    /// The line leaves the chip: count the write-back if dirty.
    fn retire(&mut self, core: usize, v: CacheLine) {
        if v.state.is_dirty() {
            self.cores[core].counters.writebacks += 1;
            if P::ACTIVE {
                self.probe.record(ObsEvent::Writeback {
                    core: CoreId(core as u8),
                });
            }
        }
    }

    /// Serialises the full architectural state into a versioned binary
    /// snapshot (see [`crate::snapshot`] for the wire layout): cache
    /// arenas and statistics, bus counters, per-core clocks/counters and
    /// warm-up bookkeeping, prefetcher tables, the policy's adaptive state
    /// including its RNG stream, and each core's feed position.
    ///
    /// Restoring via [`restore`](CmpSystem::restore) on a freshly built
    /// identical system then running yields bit-identical results to never
    /// having stopped. The probe is *not* captured: checkpointed runs use
    /// the [`NullProbe`] path, and a probed system restores its
    /// architectural state but starts its observation stream fresh.
    pub fn snapshot(&self) -> Vec<u8> {
        use crate::snapshot::{tag, SNAP_MAGIC, SNAP_VERSION};
        let mut w = cmp_snap::SnapWriter::new();
        w.put_raw(&SNAP_MAGIC);
        w.put_u16(SNAP_VERSION);
        w.section(tag::FINGERPRINT, |w| {
            w.put_u32(self.cfg.cores as u32);
            for g in [&self.cfg.l1, &self.cfg.l2] {
                w.put_u32(g.sets());
                w.put_u16(g.ways());
                w.put_u32(g.line_bytes());
            }
            w.put_u32(self.cfg.lat_l2_local);
            w.put_u32(self.cfg.lat_l2_remote);
            w.put_u32(self.cfg.lat_mem);
            w.put_u8(match self.cfg.read_policy {
                ReadPolicy::Migrate => 0,
                ReadPolicy::Replicate => 1,
            });
            w.put_bool(self.cfg.track_set_stats);
            w.put_str(self.policy.name());
            match self.cfg.prefetch {
                None => w.put_bool(false),
                Some(p) => {
                    w.put_bool(true);
                    w.put_u64(p.entries as u64);
                    w.put_u8(p.degree);
                    w.put_u8(p.threshold);
                }
            }
            w.put_u64(self.epoch_accesses);
            w.put_u8(self.cfg.fabric.as_u8());
        });
        w.section(tag::GLOBALS, |w| {
            Self::save_globals(w, &self.global);
            match &self.global_warm {
                None => w.put_bool(false),
                Some(g) => {
                    w.put_bool(true);
                    Self::save_globals(w, g);
                }
            }
            w.put_u64(self.epoch_counter);
            w.put_u64(self.epoch_index);
        });
        w.section(tag::CORES, |w| {
            w.put_u64(self.cores.len() as u64);
            for c in &self.cores {
                w.put_str(&c.source.label);
                w.put_f64(c.clock);
                w.put_f64(c.carry);
                // The first three counters head the record so the
                // `SnapshotInfo` header view can report per-core progress
                // without decoding the rest.
                w.put_u64(c.counters.instrs);
                w.put_f64(c.counters.cycles);
                w.put_u64(c.counters.l1_accesses);
                w.blob(|w| {
                    Self::save_counter_tail(w, &c.counters);
                    for snap in [&c.warm_snap, &c.end_snap] {
                        match snap {
                            None => w.put_bool(false),
                            Some(s) => {
                                w.put_bool(true);
                                w.put_u64(s.instrs);
                                w.put_f64(s.cycles);
                                w.put_u64(s.l1_accesses);
                                Self::save_counter_tail(w, s);
                            }
                        }
                    }
                });
            }
        });
        w.section(tag::L1S, |w| {
            for c in &self.l1s {
                c.save_state(w);
            }
        });
        w.section(tag::L2S, |w| {
            for c in &self.l2s {
                c.save_state(w);
            }
        });
        w.section(tag::BUS, |w| self.fabric.save_state(w));
        w.section(tag::PREFETCH, |w| {
            w.put_u64(self.prefetchers.len() as u64);
            for p in &self.prefetchers {
                p.save_state(w);
            }
        });
        w.section(tag::POLICY, |w| self.policy.save_state(w));
        w.into_bytes()
    }

    fn save_globals(w: &mut cmp_snap::SnapWriter, g: &GlobalCounters) {
        w.put_u64(g.spills);
        w.put_u64(g.swaps);
        w.put_u64(g.spill_hits);
    }

    /// The 7 counter fields after the `(instrs, cycles, l1_accesses)` head.
    fn save_counter_tail(w: &mut cmp_snap::SnapWriter, c: &Counters) {
        w.put_u64(c.l1_hits);
        w.put_u64(c.l2_accesses);
        w.put_u64(c.l2_local_hits);
        w.put_u64(c.l2_remote_hits);
        w.put_u64(c.l2_mem);
        w.put_u64(c.offchip_fetches);
        w.put_u64(c.writebacks);
    }

    fn load_globals(
        r: &mut cmp_snap::SnapReader<'_>,
    ) -> Result<GlobalCounters, cmp_snap::SnapError> {
        Ok(GlobalCounters {
            spills: r.get_u64()?,
            swaps: r.get_u64()?,
            spill_hits: r.get_u64()?,
        })
    }

    fn load_counters(r: &mut cmp_snap::SnapReader<'_>) -> Result<Counters, cmp_snap::SnapError> {
        Ok(Counters {
            instrs: r.get_u64()?,
            cycles: r.get_f64()?,
            l1_accesses: r.get_u64()?,
            l1_hits: r.get_u64()?,
            l2_accesses: r.get_u64()?,
            l2_local_hits: r.get_u64()?,
            l2_remote_hits: r.get_u64()?,
            l2_mem: r.get_u64()?,
            offchip_fetches: r.get_u64()?,
            writebacks: r.get_u64()?,
        })
    }

    /// Restores a snapshot taken by [`snapshot`](CmpSystem::snapshot) into
    /// this *freshly constructed* system, fast-forwarding each core's feed
    /// to the captured access position. Continuing with
    /// [`run`](CmpSystem::run) (same targets) is bit-identical to the
    /// uninterrupted run the snapshot was taken from.
    ///
    /// # Errors
    ///
    /// [`cmp_snap::SnapError::Mismatch`] if this system was built from a
    /// different configuration, policy variant or workload mix than the
    /// snapshot (or has already stepped); [`cmp_snap::SnapError::Corrupt`]
    /// / [`cmp_snap::SnapError::UnexpectedEof`] on damaged input. On error
    /// the system may be partially overwritten and must be discarded.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), cmp_snap::SnapError> {
        use crate::snapshot::tag;
        use cmp_snap::SnapError;
        if self.cores.iter().any(|c| c.counters.l1_accesses != 0) {
            return Err(SnapError::Mismatch(
                "restore target must be freshly constructed (its feeds have already advanced)"
                    .into(),
            ));
        }
        let mut r = crate::snapshot::read_envelope(bytes)?;

        let mut fp = r.expect_section(tag::FINGERPRINT)?;
        let cores = fp.get_u32()?;
        if cores != self.cfg.cores as u32 {
            return Err(SnapError::Mismatch(format!(
                "core count: snapshot {cores}, live {}",
                self.cfg.cores
            )));
        }
        for (name, g) in [("L1", &self.cfg.l1), ("L2", &self.cfg.l2)] {
            let shape = (fp.get_u32()?, fp.get_u16()?, fp.get_u32()?);
            if shape != (g.sets(), g.ways(), g.line_bytes()) {
                return Err(SnapError::Mismatch(format!(
                    "{name} geometry: snapshot {shape:?}, live ({}, {}, {})",
                    g.sets(),
                    g.ways(),
                    g.line_bytes()
                )));
            }
        }
        let lats = (fp.get_u32()?, fp.get_u32()?, fp.get_u32()?);
        if lats
            != (
                self.cfg.lat_l2_local,
                self.cfg.lat_l2_remote,
                self.cfg.lat_mem,
            )
        {
            return Err(SnapError::Mismatch(format!(
                "latencies: snapshot {lats:?}, live ({}, {}, {})",
                self.cfg.lat_l2_local, self.cfg.lat_l2_remote, self.cfg.lat_mem
            )));
        }
        let rp = fp.get_u8()?;
        let live_rp = match self.cfg.read_policy {
            ReadPolicy::Migrate => 0,
            ReadPolicy::Replicate => 1,
        };
        if rp != live_rp {
            return Err(SnapError::Mismatch(format!(
                "read policy: snapshot {rp}, live {live_rp}"
            )));
        }
        if fp.get_bool()? != self.cfg.track_set_stats {
            return Err(SnapError::Mismatch("set-stats tracking differs".into()));
        }
        let pname = fp.get_str()?;
        if pname != self.policy.name() {
            return Err(SnapError::Mismatch(format!(
                "policy: snapshot \"{pname}\", live \"{}\"",
                self.policy.name()
            )));
        }
        let snap_pf = fp
            .get_bool()?
            .then(|| -> Result<_, SnapError> { Ok((fp.get_u64()?, fp.get_u8()?, fp.get_u8()?)) });
        let snap_pf = snap_pf.transpose()?;
        let live_pf = self
            .cfg
            .prefetch
            .map(|p| (p.entries as u64, p.degree, p.threshold));
        if snap_pf != live_pf {
            return Err(SnapError::Mismatch(format!(
                "prefetch config: snapshot {snap_pf:?}, live {live_pf:?}"
            )));
        }
        if fp.get_u64()? != self.epoch_accesses {
            return Err(SnapError::Mismatch(
                "observation-epoch length differs".into(),
            ));
        }
        let fk = fp.get_u8()?;
        if fk != self.cfg.fabric.as_u8() {
            return Err(SnapError::Mismatch(format!(
                "coherence fabric: snapshot {fk}, live {}",
                self.cfg.fabric.as_u8()
            )));
        }
        fp.finish("fingerprint section")?;

        let mut gl = r.expect_section(tag::GLOBALS)?;
        self.global = Self::load_globals(&mut gl)?;
        self.global_warm = if gl.get_bool()? {
            Some(Self::load_globals(&mut gl)?)
        } else {
            None
        };
        self.epoch_counter = gl.get_u64()?;
        self.epoch_index = gl.get_u64()?;
        gl.finish("globals section")?;

        let mut cs = r.expect_section(tag::CORES)?;
        let n = cs.get_u64()?;
        if n != self.cores.len() as u64 {
            return Err(SnapError::Corrupt(format!(
                "core record count {n} for {} cores",
                self.cores.len()
            )));
        }
        for (i, c) in self.cores.iter_mut().enumerate() {
            let label = cs.get_str()?;
            if label != c.source.label {
                return Err(SnapError::Mismatch(format!(
                    "core {i} workload: snapshot \"{label}\", live \"{}\"",
                    c.source.label
                )));
            }
            c.clock = cs.get_f64()?;
            c.carry = cs.get_f64()?;
            let head = (cs.get_u64()?, cs.get_f64()?, cs.get_u64()?);
            let mut tail = cs.get_blob()?;
            let counters = Counters {
                instrs: head.0,
                cycles: head.1,
                l1_accesses: head.2,
                l1_hits: tail.get_u64()?,
                l2_accesses: tail.get_u64()?,
                l2_local_hits: tail.get_u64()?,
                l2_remote_hits: tail.get_u64()?,
                l2_mem: tail.get_u64()?,
                offchip_fetches: tail.get_u64()?,
                writebacks: tail.get_u64()?,
            };
            c.counters = counters;
            c.warm_snap = if tail.get_bool()? {
                Some(Self::load_counters(&mut tail)?)
            } else {
                None
            };
            c.end_snap = if tail.get_bool()? {
                Some(Self::load_counters(&mut tail)?)
            } else {
                None
            };
            tail.finish("core record")?;
            // Feeds are pure deterministic generators: reposition the
            // fresh feed at the captured access index instead of
            // serialising generator internals.
            c.source.feed.fast_forward(counters.l1_accesses);
        }
        cs.finish("cores section")?;

        let mut l1 = r.expect_section(tag::L1S)?;
        for c in &mut self.l1s {
            c.load_state(&mut l1)?;
        }
        l1.finish("L1 section")?;
        let mut l2 = r.expect_section(tag::L2S)?;
        for c in &mut self.l2s {
            c.load_state(&mut l2)?;
        }
        l2.finish("L2 section")?;

        let mut bus = r.expect_section(tag::BUS)?;
        self.fabric.load_state(&mut bus)?;
        bus.finish("bus section")?;
        // The directory's sharer table is derived state: rebuild it from
        // the just-restored L2s (and validate against the saved digest).
        self.fabric.sync(&self.l2s)?;

        let mut pf = r.expect_section(tag::PREFETCH)?;
        let np = pf.get_u64()?;
        if np != self.prefetchers.len() as u64 {
            return Err(SnapError::Corrupt(format!(
                "prefetcher count {np} for {} live tables",
                self.prefetchers.len()
            )));
        }
        for p in &mut self.prefetchers {
            p.load_state(&mut pf)?;
        }
        pf.finish("prefetch section")?;

        let mut pol = r.expect_section(tag::POLICY)?;
        self.policy.load_state(&mut pol)?;
        pol.finish("policy section")?;
        // Unknown trailing sections (future versions) are permitted.
        Ok(())
    }

    fn train_prefetcher(&mut self, i: usize, stream: u16, line: LineAddr) {
        if self.prefetchers.is_empty() {
            return;
        }
        self.pf_buf.clear();
        let mut buf = std::mem::take(&mut self.pf_buf);
        self.prefetchers[i].train(stream, line, &mut buf);
        for &pl in &buf {
            // Prefetch from memory only; skip lines already on chip (the
            // holder count covers the local cache too).
            if self.fabric.holder_count(&self.l2s, pl) != 0 {
                continue;
            }
            let set = self.cfg.l2.set_of(pl);
            self.cores[i].counters.offchip_fetches += 1;
            let evicted = self.fill_l2(i, set, pl, MesiState::Exclusive, false, FillKind::Prefetch);
            if let Some(v) = evicted {
                self.dispose(i, set, v);
            }
        }
        self.pf_buf = buf;
    }
}

impl CoreState {
    fn cycles_add(&mut self, dc: f64) {
        self.clock += dc;
        self.counters.cycles += dc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_cache::PrivateBaseline;
    use cmp_trace::{CoreWorkload, CpuModel, CyclicStream};

    fn workload(base: u64, region: u64) -> CoreWorkload {
        CoreWorkload {
            label: format!("loop@{base:#x}"),
            cpu: CpuModel {
                mem_fraction: 0.25,
                base_cpi: 1.0,
                overlap: 1.0,
                store_fraction: 0.0,
            },
            stream: Box::new(CyclicStream::words(base, region, 0)),
        }
    }

    fn tiny_cfg(cores: usize) -> SystemConfig {
        let mut cfg = SystemConfig::table2(cores);
        cfg.l1 = cmp_cache::CacheGeometry::from_capacity(1 << 10, 2, 32).unwrap();
        cfg.l2 = cmp_cache::CacheGeometry::from_capacity(16 << 10, 4, 32).unwrap();
        cfg
    }

    #[test]
    fn small_loop_hits_l1_after_warmup() {
        // 512 B loop fits the 1 kB L1 entirely.
        let mut sys = CmpSystem::new(
            tiny_cfg(1),
            Box::new(PrivateBaseline::new()),
            vec![workload(0, 512)],
        );
        let r = sys.run(50_000, 10_000);
        assert_eq!(r.cores.len(), 1);
        let c = &r.cores[0];
        assert!(c.l1_hits as f64 / c.l1_accesses as f64 > 0.99, "l1 {c:?}");
        // CPI = base (1.0): no stalls.
        assert!((c.cpi() - 1.0).abs() < 0.05, "cpi {}", c.cpi());
        sys.assert_inclusive();
    }

    #[test]
    fn l2_sized_loop_misses_l1_hits_l2() {
        // 4 kB loop: thrashes the 1 kB L1, fits the 16 kB L2.
        let mut sys = CmpSystem::new(
            tiny_cfg(1),
            Box::new(PrivateBaseline::new()),
            vec![workload(0, 4 << 10)],
        );
        let r = sys.run(50_000, 10_000);
        let c = &r.cores[0];
        assert!(c.l2_accesses > 0);
        assert_eq!(c.l2_mem, 0, "everything must hit the L2 after warmup");
        assert_eq!(c.l2_remote_hits, 0);
        // CPI = base + f * (1/8 line miss rate) * 9 cycles.
        let expect = 1.0 + 0.25 * 0.125 * 9.0;
        assert!((c.cpi() - expect).abs() < 0.1, "cpi {}", c.cpi());
    }

    #[test]
    fn giant_loop_misses_to_memory() {
        let mut sys = CmpSystem::new(
            tiny_cfg(1),
            Box::new(PrivateBaseline::new()),
            vec![workload(0, 1 << 20)],
        );
        let r = sys.run(50_000, 10_000);
        let c = &r.cores[0];
        assert!(c.l2_mem > 0);
        assert!(c.l2_mpki() > 20.0, "mpki {}", c.l2_mpki());
        assert!(c.cpi() > 10.0, "memory-bound cpi {}", c.cpi());
        assert_eq!(c.offchip_fetches, c.l2_mem);
    }

    fn two_core_ascc() -> CmpSystem {
        let cfg = tiny_cfg(2);
        let policy = Box::new(ascc::AsccPolicy::new(ascc::AsccConfig::ascc(
            2,
            cfg.l2.sets(),
            cfg.l2.ways(),
        )));
        CmpSystem::new(
            cfg,
            policy,
            vec![workload(0, 24 << 10), workload(1 << 40, 20 << 10)],
        )
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        // Straight run, capturing a snapshot somewhere mid-flight.
        let mut straight = two_core_ascc();
        let mut taken = None;
        let mut steps = 0u64;
        let straight_result = straight.run_with_hook(30_000, 5_000, |sys| {
            steps += 1;
            if steps == 7_000 {
                taken = Some(sys.snapshot());
            }
        });
        let taken = taken.expect("run is longer than 7000 accesses");
        let straight_end = straight.snapshot();

        // Fresh system, restore at access N, run to completion.
        let mut resumed = two_core_ascc();
        resumed.restore(&taken).expect("snapshot applies");
        let resumed_result = resumed.run(30_000, 5_000);

        assert_eq!(straight_result, resumed_result);
        // Byte-identical end-state snapshots: every cache slab, counter,
        // policy register and RNG stream agrees, not just the results.
        assert_eq!(straight_end, resumed.snapshot());
    }

    #[test]
    fn snapshot_header_parses_without_a_system() {
        let mut sys = two_core_ascc();
        for _ in 0..100 {
            sys.step(0);
            sys.step(1);
        }
        let bytes = sys.snapshot();
        let info = crate::snapshot::SnapshotInfo::parse(&bytes).unwrap();
        assert_eq!(info.version, crate::snapshot::SNAP_VERSION);
        assert_eq!(info.cores, 2);
        assert_eq!(info.core_info.len(), 2);
        assert!(info.core_info.iter().all(|c| c.accesses == 100));
        assert_eq!(info.l2_geometry.2, 32);
        assert!(info.policy.starts_with("ASCC"));
        assert_eq!(info.sections.len(), 8);
    }

    #[test]
    fn restore_rejects_mismatches_and_corruption() {
        let mut donor = two_core_ascc();
        for _ in 0..50 {
            donor.step(0);
        }
        let bytes = donor.snapshot();

        // Different policy.
        let cfg = tiny_cfg(2);
        let mut other = CmpSystem::new(
            cfg,
            Box::new(PrivateBaseline::new()),
            vec![workload(0, 24 << 10), workload(1 << 40, 20 << 10)],
        );
        assert!(matches!(
            other.restore(&bytes),
            Err(cmp_snap::SnapError::Mismatch(_))
        ));

        // Already-stepped target.
        let mut stepped = two_core_ascc();
        stepped.step(0);
        assert!(matches!(
            stepped.restore(&bytes),
            Err(cmp_snap::SnapError::Mismatch(_))
        ));

        // Truncation at every eighth byte must error, never panic.
        let mut fresh = two_core_ascc();
        for cut in (0..bytes.len()).step_by(8) {
            assert!(fresh.restore(&bytes[..cut]).is_err(), "cut at {cut}");
            fresh = two_core_ascc();
        }

        // Bad magic.
        let mut garbled = bytes.clone();
        garbled[0] ^= 0xFF;
        assert!(matches!(
            two_core_ascc().restore(&garbled),
            Err(cmp_snap::SnapError::BadMagic)
        ));
    }

    #[test]
    fn fabrics_are_bit_identical() {
        // Same mix, same policy, both coherence fabrics: architectural
        // results and every counter except `probes` must agree exactly.
        let run = |fabric| {
            let cfg = tiny_cfg(2).with_fabric(fabric);
            let policy = Box::new(ascc::AsccPolicy::new(ascc::AsccConfig::ascc(
                2,
                cfg.l2.sets(),
                cfg.l2.ways(),
            )));
            let mut sys = CmpSystem::new(
                cfg,
                policy,
                vec![workload(0, 24 << 10), workload(1 << 40, 20 << 10)],
            );
            let r = sys.run(30_000, 5_000);
            let s = *sys.fabric().stats();
            (r, s.snoops, s.transfers, s.invalidations, s.probes)
        };
        let (rb, sb, tb, ib, pb) = run(cmp_coherence::FabricKind::Broadcast);
        let (rd, sd, td, id, pd) = run(cmp_coherence::FabricKind::Directory);
        assert_eq!(rb, rd, "results diverge across fabrics");
        assert_eq!((sb, tb, ib), (sd, td, id), "protocol counters diverge");
        assert!(pd <= pb, "directory probes ({pd}) exceed broadcast ({pb})");
    }

    #[test]
    fn baseline_cores_are_isolated() {
        // Two cores in disjoint regions under the baseline: identical
        // workloads produce identical measured CPIs.
        let mut sys = CmpSystem::new(
            tiny_cfg(2),
            Box::new(PrivateBaseline::new()),
            vec![workload(0, 4 << 10), workload(1 << 30, 4 << 10)],
        );
        let r = sys.run(30_000, 5_000);
        assert!((r.cores[0].cpi() - r.cores[1].cpi()).abs() < 0.05);
        assert_eq!(r.spills, 0);
        assert_eq!(r.cores[0].l2_remote_hits, 0);
    }

    #[test]
    fn run_is_deterministic() {
        let go = || {
            let mut sys = CmpSystem::new(
                tiny_cfg(2),
                Box::new(PrivateBaseline::new()),
                vec![workload(0, 8 << 10), workload(1 << 30, 64 << 10)],
            );
            let r = sys.run(20_000, 5_000);
            (r.cores[0].cycles, r.cores[1].cycles, r.offchip_accesses())
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn writebacks_counted_for_dirty_evictions() {
        let mut w = workload(0, 1 << 20);
        w.cpu.store_fraction = 0.0;
        // All-store stream over a huge region: every line is dirtied and
        // eventually evicted dirty.
        let mut stores = workload(0, 1 << 20);
        stores.stream = Box::new(StoreEverything(CyclicStream::words(0, 1 << 20, 0)));
        let mut sys = CmpSystem::new(tiny_cfg(1), Box::new(PrivateBaseline::new()), vec![stores]);
        let r = sys.run(50_000, 10_000);
        assert!(r.cores[0].writebacks > 0, "{:?}", r.cores[0]);
    }

    struct StoreEverything(CyclicStream);
    impl cmp_trace::AccessStream for StoreEverything {
        fn next_access(&mut self) -> cmp_trace::Access {
            let mut a = self.0.next_access();
            a.kind = AccessKind::Store;
            a
        }
    }
}
