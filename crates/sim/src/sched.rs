//! First-minimum clock scheduling for the batched event loop.
//!
//! The streaming loop re-runs `min_by(total_cmp)` over every core clock
//! for each access; the batched loop needs the same pick — plus the
//! *horizon* (minimum clock of the other cores) and its first owner —
//! once per drain. Scanning `CoreState.clock` directly means touching
//! one (large, scattered) core struct per core per drain, so the batched
//! loop mirrors the clocks into a compact contiguous array and calls
//! [`argmin_and_horizon`]: one fused pass that yields all three values
//! from a few cache lines. A tournament tree would make the queries
//! O(log cores), but at the core counts this simulator models (≤64) the
//! contiguous sweep's constant factor wins — the whole array is at most
//! eight cache lines, while tree walks chase scattered node pairs with
//! data-dependent branches.
//!
//! Bit-identity matters more than speed here: the pass reproduces the
//! first-minimum semantics of the streaming scan — `min_by` keeps the
//! *first* of tied elements, and the horizon owner is the first peer
//! attaining the horizon. A property test pins the fused pass against
//! the two verbatim linear scans.

/// One fused pass over the clock array, returning `(argmin, horizon,
/// horizon_owner)`:
///
/// - `argmin` — the core the streaming `min_by` would schedule (first
///   index attaining the minimum clock);
/// - `horizon` — the minimum clock over the *other* cores, i.e. the
///   point the drained core's clock must not pass;
/// - `horizon_owner` — the first core attaining the horizon, which
///   settles clock ties: the drained core keeps the schedule on an exact
///   tie only while its index is smaller.
///
/// With a single core the horizon is `+∞` and the owner `usize::MAX`,
/// matching a linear scan over an empty peer set.
/// The streaming `min_by` pick alone: the first index attaining the
/// minimum clock. The batched loop's *step mode* uses this when drains
/// have degenerated to single accesses — there is no horizon to compute
/// because exactly one access runs per pick, so half the comparisons of
/// [`argmin_and_horizon`] suffice.
#[inline]
pub(crate) fn argmin(clocks: &[f64]) -> usize {
    let mut bi = 0;
    let mut best = clocks[0];
    for (j, &c) in clocks.iter().enumerate().skip(1) {
        if c.total_cmp(&best) == std::cmp::Ordering::Less {
            bi = j;
            best = c;
        }
    }
    bi
}

#[inline]
pub(crate) fn argmin_and_horizon(clocks: &[f64]) -> (usize, f64, usize) {
    let mut best = f64::INFINITY;
    let mut bi = usize::MAX;
    let mut second = f64::INFINITY;
    let mut si = usize::MAX;
    for (j, &c) in clocks.iter().enumerate() {
        if c.total_cmp(&best) == std::cmp::Ordering::Less {
            second = best;
            si = bi;
            best = c;
            bi = j;
        } else if c.total_cmp(&second) == std::cmp::Ordering::Less {
            // Ties with `best` land here: the first occurrence keeps the
            // schedule, the second becomes the horizon owner.
            second = c;
            si = j;
        }
    }
    (bi, second, si)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The streaming loop's scheduling scan, verbatim.
    fn scan_argmin(clocks: &[f64]) -> usize {
        let mut i = 0;
        for j in 1..clocks.len() {
            if clocks[j].total_cmp(&clocks[i]) == std::cmp::Ordering::Less {
                i = j;
            }
        }
        i
    }

    /// The pre-fusion horizon scan, verbatim.
    fn scan_excluding(clocks: &[f64], i: usize) -> (f64, usize) {
        let mut horizon = f64::INFINITY;
        let mut jfirst = usize::MAX;
        for (j, &c) in clocks.iter().enumerate() {
            if j != i && c.total_cmp(&horizon) == std::cmp::Ordering::Less {
                horizon = c;
                jfirst = j;
            }
        }
        (horizon, jfirst)
    }

    #[test]
    fn single_core_has_infinite_horizon() {
        let (i, h, j) = argmin_and_horizon(&[7.5]);
        assert_eq!(i, 0);
        assert_eq!(h, f64::INFINITY);
        assert_eq!(j, usize::MAX);
    }

    #[test]
    fn ties_resolve_to_the_first_index() {
        let (i, h, j) = argmin_and_horizon(&[3.0, 1.0, 1.0, 2.0]);
        assert_eq!(i, 1);
        assert_eq!((h, j), (1.0, 2));
    }

    proptest! {
        /// The fused pass and the linear scans agree through a random
        /// update sequence — including repeated clock values, the tie
        /// case the first-minimum rule exists for.
        #[test]
        fn fused_pass_matches_linear_scans(
            n in 1usize..67,
            updates in prop::collection::vec((0usize..67, 0u32..12), 0..200),
        ) {
            let mut clocks: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
            for (slot, quantized) in updates {
                // Coarse values force plenty of exact ties.
                clocks[slot % n] += quantized as f64 * 0.5;
                let (bi, horizon, si) = argmin_and_horizon(&clocks);
                prop_assert_eq!(bi, scan_argmin(&clocks));
                prop_assert_eq!(argmin(&clocks), scan_argmin(&clocks));
                prop_assert_eq!((horizon, si), scan_excluding(&clocks, bi));
            }
        }
    }
}
