//! Versioned binary snapshots of full architectural state.
//!
//! A snapshot captures *everything* a [`CmpSystem`](crate::CmpSystem)
//! needs to resume bit-identically: cache tag/meta/recency slabs and
//! statistics, the snoop bus counters, per-core clocks and counters,
//! warm-up bookkeeping, prefetcher tables, the policy's adaptive state
//! (SSL counters, BIP flags, duelling counters, AVGCC granularity, QoS
//! estimators) including its RNG stream, and the per-core trace positions
//! used to fast-forward freshly built feeds. The defining invariant,
//! pinned by the engine goldens and the differential-oracle resume tests:
//!
//! > restore-at-access-N, then run ≡ straight run (bit-identical).
//!
//! ## Wire layout (version 1, little-endian)
//!
//! ```text
//! magic   "ASCCSNAP"          8 bytes
//! version u16                 = 1
//! sections (tag u8, len u64, payload) — in tag order:
//!   1 FINGERPRINT  configuration identity (rejected on mismatch)
//!   2 GLOBALS      spill/swap/epoch counters
//!   3 CORES        per-core clock, carry, counters, warm/end snapshots
//!   4 L1S          one cache arena per core
//!   5 L2S          one cache arena per core
//!   6 BUS          snoop-bus statistics
//!   7 PREFETCH     stride-prefetcher tables (empty when disabled)
//!   8 POLICY       policy-defined payload (LlcPolicy::save_state)
//! ```
//!
//! Readers skip unknown trailing sections, which is the compatibility
//! valve for future versions; see DESIGN.md §5f for the full rules.

use cmp_snap::{SnapError, SnapReader};

/// Leading magic of every snapshot stream.
pub const SNAP_MAGIC: [u8; 8] = *b"ASCCSNAP";

/// Format version this build writes and reads.
pub const SNAP_VERSION: u16 = 1;

/// Section tags of the version-1 layout.
pub mod tag {
    /// Configuration fingerprint.
    pub const FINGERPRINT: u8 = 1;
    /// Global spill/swap/epoch counters.
    pub const GLOBALS: u8 = 2;
    /// Per-core timing and counter state.
    pub const CORES: u8 = 3;
    /// L1 cache arenas.
    pub const L1S: u8 = 4;
    /// L2 cache arenas.
    pub const L2S: u8 = 5;
    /// Snoop-bus statistics.
    pub const BUS: u8 = 6;
    /// Stride-prefetcher tables.
    pub const PREFETCH: u8 = 7;
    /// Policy-defined payload.
    pub const POLICY: u8 = 8;
}

/// Checks the envelope and returns a reader positioned at the first
/// section.
pub(crate) fn read_envelope(bytes: &[u8]) -> Result<SnapReader<'_>, SnapError> {
    let mut r = SnapReader::new(bytes);
    let mut magic = [0u8; 8];
    for b in &mut magic {
        *b = r.get_u8().map_err(|_| SnapError::BadMagic)?;
    }
    if magic != SNAP_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = r.get_u16()?;
    if version != SNAP_VERSION {
        return Err(SnapError::BadVersion {
            found: version,
            supported: SNAP_VERSION,
        });
    }
    Ok(r)
}

/// Summary of one core's position within a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreInfo {
    /// Workload label, e.g. `"473.astar"`.
    pub label: String,
    /// Accesses consumed from the core's feed (== L1 accesses).
    pub accesses: u64,
    /// Instructions committed.
    pub instrs: u64,
    /// The core's clock, in cycles.
    pub cycles: f64,
}

/// Header-level view of a snapshot, decodable without constructing a
/// system — this is what `trace_tool snapshot` prints.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotInfo {
    /// Format version of the stream.
    pub version: u16,
    /// Policy name recorded in the fingerprint.
    pub policy: String,
    /// Core count.
    pub cores: u32,
    /// `(sets, ways, line_bytes)` of the private L1s.
    pub l1_geometry: (u32, u16, u32),
    /// `(sets, ways, line_bytes)` of the private L2s.
    pub l2_geometry: (u32, u16, u32),
    /// Per-core progress.
    pub core_info: Vec<CoreInfo>,
    /// `(tag, payload bytes)` of every section, in stream order.
    pub sections: Vec<(u8, u64)>,
}

impl SnapshotInfo {
    /// Parses the envelope, fingerprint and per-core progress out of a
    /// snapshot stream without touching the cache arenas or policy payload.
    pub fn parse(bytes: &[u8]) -> Result<SnapshotInfo, SnapError> {
        let mut r = read_envelope(bytes)?;
        let mut info = SnapshotInfo {
            version: SNAP_VERSION,
            policy: String::new(),
            cores: 0,
            l1_geometry: (0, 0, 0),
            l2_geometry: (0, 0, 0),
            core_info: Vec::new(),
            sections: Vec::new(),
        };
        let mut seen_fingerprint = false;
        while let Some((t, mut body)) = r.next_section()? {
            info.sections.push((t, body.remaining() as u64));
            match t {
                tag::FINGERPRINT => {
                    info.cores = body.get_u32()?;
                    info.l1_geometry = (body.get_u32()?, body.get_u16()?, body.get_u32()?);
                    info.l2_geometry = (body.get_u32()?, body.get_u16()?, body.get_u32()?);
                    let _lat = (body.get_u32()?, body.get_u32()?, body.get_u32()?);
                    let _read_policy = body.get_u8()?;
                    let _track_set_stats = body.get_bool()?;
                    info.policy = body.get_str()?.to_string();
                }
                tag::CORES => {
                    let n = body.get_u64()?;
                    for _ in 0..n {
                        let label = body.get_str()?.to_string();
                        let _clock = body.get_f64()?;
                        let _carry = body.get_f64()?;
                        // First three counter fields: instrs, cycles,
                        // l1_accesses (the feed position).
                        let instrs = body.get_u64()?;
                        let cycles = body.get_f64()?;
                        let accesses = body.get_u64()?;
                        // Remaining counters + warm/end option blocks are
                        // length-delimited; skip them for the header view.
                        body.get_blob()?;
                        info.core_info.push(CoreInfo {
                            label,
                            accesses,
                            instrs,
                            cycles,
                        });
                    }
                }
                _ => {}
            }
            if t == tag::FINGERPRINT {
                seen_fingerprint = true;
            }
        }
        if !seen_fingerprint {
            return Err(SnapError::Corrupt("no fingerprint section".into()));
        }
        Ok(info)
    }
}
