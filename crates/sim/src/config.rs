//! System configuration (the paper's Table 2).

use cmp_cache::{CacheGeometry, PrefetchConfig};
use cmp_coherence::{FabricKind, ReadPolicy};

/// Configuration of a [`crate::CmpSystem`].
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Number of cores (each with private L1 + L2).
    pub cores: usize,
    /// L1 data cache geometry (Table 2: 32 kB, 4-way, 32 B, WT).
    pub l1: CacheGeometry,
    /// Private L2 (LLC) geometry (Table 2: 1 MB, 8-way, 32 B, WB).
    pub l2: CacheGeometry,
    /// Local L2 hit latency in cycles (Table 2: 9).
    pub lat_l2_local: u32,
    /// Remote L2 hit latency in cycles (Table 2: 25).
    pub lat_l2_remote: u32,
    /// Main memory latency in cycles (Table 2: 115 ns at 4 GHz = 460).
    pub lat_mem: u32,
    /// Remote-read semantics: migrate (multiprogrammed private data) or
    /// replicate (multithreaded shared data).
    pub read_policy: ReadPolicy,
    /// Optional per-LLC stride prefetcher (§6.3).
    pub prefetch: Option<PrefetchConfig>,
    /// Track per-set L2 statistics (Fig. 2; costs memory).
    pub track_set_stats: bool,
    /// Coherence fabric: broadcast snooping (spec-literal, O(cores) probes
    /// per miss) or the sharer-bitmask directory (O(sharers), bit-identical
    /// results). The directory is the default.
    pub fabric: FabricKind,
}

impl SystemConfig {
    /// The paper's baseline architecture (Table 2) for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or above 64.
    pub fn table2(cores: usize) -> Self {
        assert!(cores > 0 && cores <= 64, "1..=64 cores supported");
        SystemConfig {
            cores,
            l1: CacheGeometry::from_capacity(32 << 10, 4, 32).expect("valid L1 shape"),
            l2: CacheGeometry::from_capacity(1 << 20, 8, 32).expect("valid L2 shape"),
            lat_l2_local: 9,
            lat_l2_remote: 25,
            lat_mem: 460,
            read_policy: ReadPolicy::Migrate,
            prefetch: None,
            track_set_stats: false,
            fabric: FabricKind::Directory,
        }
    }

    /// Same architecture on the other coherence fabric.
    pub fn with_fabric(mut self, fabric: FabricKind) -> Self {
        self.fabric = fabric;
        self
    }

    /// Same architecture with a different L2 capacity (Table 4 sweeps
    /// 1/2/4 MB; the §6.3 multithreaded study reduces to 512 kB).
    ///
    /// # Panics
    ///
    /// Panics if the capacity does not produce a valid 8-way, 32 B geometry.
    pub fn with_l2_capacity(mut self, bytes: u64) -> Self {
        self.l2 = CacheGeometry::from_capacity(bytes, 8, 32).expect("valid L2 capacity");
        self
    }

    /// Multithreaded configuration of §6.3: shared address space
    /// (replication semantics) and a 512 kB LLC.
    pub fn multithreaded(cores: usize) -> Self {
        let mut c = Self::table2(cores).with_l2_capacity(512 << 10);
        c.read_policy = ReadPolicy::Replicate;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let c = SystemConfig::table2(4);
        assert_eq!(c.l1.to_string(), "32kB/4-way/32B (256 sets)");
        assert_eq!(c.l2.to_string(), "1MB/8-way/32B (4096 sets)");
        assert_eq!(c.lat_l2_local, 9);
        assert_eq!(c.lat_l2_remote, 25);
        assert_eq!(c.lat_mem, 460);
        assert_eq!(c.read_policy, ReadPolicy::Migrate);
    }

    #[test]
    fn directory_fabric_is_the_default() {
        let c = SystemConfig::table2(4);
        assert_eq!(c.fabric, FabricKind::Directory);
        let b = c.with_fabric(FabricKind::Broadcast);
        assert_eq!(b.fabric, FabricKind::Broadcast);
    }

    #[test]
    fn capacity_override() {
        let c = SystemConfig::table2(2).with_l2_capacity(2 << 20);
        assert_eq!(c.l2.sets(), 8192);
    }

    #[test]
    fn multithreaded_shape() {
        let c = SystemConfig::multithreaded(4);
        assert_eq!(c.l2.capacity_bytes(), 512 << 10);
        assert_eq!(c.read_policy, ReadPolicy::Replicate);
    }
}
