//! Memory-hierarchy energy model (§6.2's power-reduction claims).
//!
//! A simple event-energy model: every L2 access costs an L2 array access,
//! remote hits add an interconnect transfer, and off-chip accesses (fetches
//! and write-backs) cost a DRAM access. Only *relative* energy between
//! policies matters for reproducing the paper's "25% / 29% power reduction"
//! statements, so the constants are representative nJ values for a ~45 nm
//! node rather than a calibrated CACTI model.

use crate::metrics::RunResult;

/// Energy cost constants, in nanojoules per event.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EnergyModel {
    /// One L2 tag+data access.
    pub l2_access_nj: f64,
    /// One cache-to-cache transfer over the broadcast network.
    pub transfer_nj: f64,
    /// One off-chip DRAM access (fetch or write-back).
    pub dram_nj: f64,
    /// Static/background energy per core-cycle (pJ scale folded into nJ).
    pub background_nj_per_kilocycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            l2_access_nj: 0.5,
            transfer_nj: 2.0,
            dram_nj: 20.0,
            background_nj_per_kilocycle: 1.0,
        }
    }
}

impl EnergyModel {
    /// Total memory-hierarchy energy of a run, in nanojoules.
    pub fn energy_nj(&self, run: &RunResult) -> f64 {
        let mut e = 0.0;
        for c in &run.cores {
            e += c.l2_accesses as f64 * self.l2_access_nj;
            e += c.l2_remote_hits as f64 * self.transfer_nj;
            e += c.offchip_accesses() as f64 * self.dram_nj;
            e += c.cycles / 1000.0 * self.background_nj_per_kilocycle;
        }
        // Spills are extra transfers the cores never see as latency.
        e += (run.spills + run.swaps) as f64 * self.transfer_nj;
        e
    }

    /// Relative reduction (positive = `run` uses less energy than `base`).
    pub fn reduction(&self, run: &RunResult, base: &RunResult) -> f64 {
        1.0 - self.energy_nj(run) / self.energy_nj(base)
    }

    /// Average power relative to `base`, accounting for the differing run
    /// times (energy / time, normalised).
    pub fn power_reduction(&self, run: &RunResult, base: &RunResult) -> f64 {
        let t_run: f64 = run.cores.iter().map(|c| c.cycles).sum();
        let t_base: f64 = base.cores.iter().map(|c| c.cycles).sum();
        1.0 - (self.energy_nj(run) / t_run) / (self.energy_nj(base) / t_base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CoreResult;

    fn run_with(mem: u64, remote: u64, cycles: f64) -> RunResult {
        RunResult {
            policy: "x".to_string(),
            cores: vec![CoreResult {
                label: "w".to_string(),
                instrs: 1000,
                cycles,
                l2_accesses: 100,
                l2_local_hits: 100 - remote - mem,
                l2_remote_hits: remote,
                l2_mem: mem,
                offchip_fetches: mem,
                writebacks: 0,
                l1_accesses: 1000,
                l1_hits: 900,
            }],
            spills: 0,
            swaps: 0,
            spill_hits: 0,
        }
    }

    #[test]
    fn fewer_dram_accesses_reduce_energy() {
        let m = EnergyModel::default();
        let heavy = run_with(50, 0, 10_000.0);
        let light = run_with(10, 20, 9_000.0);
        assert!(m.energy_nj(&light) < m.energy_nj(&heavy));
        assert!(m.reduction(&light, &heavy) > 0.0);
        assert!(m.power_reduction(&light, &heavy) > 0.0);
    }

    #[test]
    fn remote_hits_cost_less_than_dram() {
        let m = EnergyModel::default();
        // Same access count; one run converts memory accesses to remote hits.
        let base = run_with(30, 0, 10_000.0);
        let coop = run_with(10, 20, 10_000.0);
        let red = m.reduction(&coop, &base);
        assert!(
            red > 0.1,
            "converting DRAM to transfers saves energy: {red}"
        );
    }

    #[test]
    fn identical_runs_zero_reduction() {
        let m = EnergyModel::default();
        let a = run_with(30, 5, 10_000.0);
        let b = run_with(30, 5, 10_000.0);
        assert!(m.reduction(&a, &b).abs() < 1e-12);
    }
}
