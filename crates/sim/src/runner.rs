//! Convenience runners: mixes → systems, solo runs, and the
//! fully-associative single-core run used by Fig. 1's last column.

use crate::config::SystemConfig;
use crate::metrics::{CoreResult, RunResult};
use crate::system::CmpSystem;
use cmp_cache::{
    AccessKind, CacheGeometry, CacheLine, FillKind, FullyAssocLru, InsertPos, LlcPolicy, MesiState,
    PrivateBaseline, SetAssocCache,
};
use cmp_trace::{
    CoreSource, CoreWorkload, ParallelBench, SharingSpec, SpecBench, TenantScenario, WorkloadMix,
};

/// Each core owns a disjoint `2^40`-byte region of the physical address
/// space (multiprogrammed isolation; DESIGN.md §5).
pub const CORE_SPACE_BITS: u32 = 40;

/// Derives the workload seed of core `i` from a run seed. Core indices
/// occupy disjoint bit ranges (`i << 8` for up to 256 cores), so cores of
/// one run never collide and arena keys never alias two workloads.
#[inline]
pub fn core_seed(seed: u64, i: usize) -> u64 {
    seed ^ ((i as u64) << 8)
}

/// Builds the per-core streaming workloads of a mix, placing core `i` at
/// `i << CORE_SPACE_BITS`.
pub fn mix_workloads(mix: &WorkloadMix, seed: u64) -> Vec<CoreWorkload> {
    mix.benches
        .iter()
        .enumerate()
        .map(|(i, b)| b.workload((i as u64) << CORE_SPACE_BITS, core_seed(seed, i)))
        .collect()
}

/// Builds the per-core [`CoreSource`]s of a mix — same placement and seed
/// derivation as [`mix_workloads`], but each core's accesses replay from
/// the process-wide [`TraceArena`](cmp_trace::TraceArena) when trace
/// caching is enabled, so every run over the same `(mix, seed)` shares one
/// materialization.
pub fn mix_sources(mix: &WorkloadMix, seed: u64) -> Vec<CoreSource> {
    mix.benches
        .iter()
        .enumerate()
        .map(|(i, b)| b.source((i as u64) << CORE_SPACE_BITS, core_seed(seed, i)))
        .collect()
}

/// Runs `mix` under `policy` on `cfg`, measuring `instr_target`
/// instructions per core after `warmup` instructions.
///
/// Mixes route through the trace arena (see [`mix_sources`]); the replayed
/// sequence is access-for-access identical to streaming generation, which
/// the engine bit-identity goldens pin.
pub fn run_mix(
    cfg: &SystemConfig,
    mix: &WorkloadMix,
    policy: Box<dyn LlcPolicy>,
    instr_target: u64,
    warmup: u64,
    seed: u64,
) -> RunResult {
    run_mix_with(
        cfg,
        mix,
        policy,
        instr_target,
        warmup,
        seed,
        Checkpointing::from_env().as_ref(),
    )
}

/// [`run_mix`] with explicit checkpointing control: `None` runs straight
/// through, `Some` snapshots on the given [`Checkpointing`] cadence (and
/// restores first when it asks to resume). This is the typed entry point
/// the control plane uses; [`run_mix`] is the env-driven compatibility
/// wrapper over it.
pub fn run_mix_with(
    cfg: &SystemConfig,
    mix: &WorkloadMix,
    policy: Box<dyn LlcPolicy>,
    instr_target: u64,
    warmup: u64,
    seed: u64,
    ckpt: Option<&Checkpointing>,
) -> RunResult {
    assert_eq!(cfg.cores, mix.cores(), "config/mix core count mismatch");
    let desc = format!("{:?}|seed{}", mix.benches, seed);
    run_sources_with(
        cfg,
        mix_sources(mix, seed),
        policy,
        &desc,
        instr_target,
        warmup,
        ckpt,
    )
}

/// Builds the per-core [`CoreSource`]s of a multi-tenant scenario — one
/// shard-interleaved tenant stream per core, all derived from `seed` (see
/// [`TenantScenario`] for the per-`(tenant, generation, core)` schedule).
pub fn tenant_sources(scenario: TenantScenario, cores: usize, seed: u64) -> Vec<CoreSource> {
    (0..cores)
        .map(|c| scenario.source(cores, c, seed))
        .collect()
}

/// Runs a multi-tenant traffic scenario under `policy` on `cfg`, measuring
/// `instr_target` instructions per core after `warmup`. Checkpointing
/// follows the environment ([`Checkpointing::from_env`]), so the scenario
/// sweeps inherit kill-resume exactly like the mix sweeps.
pub fn run_tenant(
    cfg: &SystemConfig,
    scenario: TenantScenario,
    policy: Box<dyn LlcPolicy>,
    instr_target: u64,
    warmup: u64,
    seed: u64,
) -> RunResult {
    let desc = format!("tenant:{}|seed{}", scenario.name(), seed);
    run_sources_with(
        cfg,
        tenant_sources(scenario, cfg.cores, seed),
        policy,
        &desc,
        instr_target,
        warmup,
        Checkpointing::from_env().as_ref(),
    )
}

/// Runs a multithreaded benchmark with a tunable sharing degree
/// ([`SharingSpec`]) under `policy` on `cfg`. The threads stream directly
/// (no arena) because each `(bench, spec, seed)` point is visited once per
/// sweep; determinism still holds — the generators are pure functions of
/// their seeds.
pub fn run_sharing(
    cfg: &SystemConfig,
    bench: ParallelBench,
    spec: SharingSpec,
    policy: Box<dyn LlcPolicy>,
    instr_target: u64,
    warmup: u64,
    seed: u64,
) -> RunResult {
    let sources = bench
        .workloads_sharing(cfg.cores, seed, spec)
        .into_iter()
        .map(Into::into)
        .collect();
    let desc = format!(
        "{bench:?}|d{:.3}w{:.3}|seed{seed}",
        spec.degree, spec.write_fraction
    );
    run_sources_with(
        cfg,
        sources,
        policy,
        &desc,
        instr_target,
        warmup,
        Checkpointing::from_env().as_ref(),
    )
}

/// The general checkpointable runner: any per-core source set, described
/// by a caller-supplied `desc` string that — together with the policy
/// name, configuration and targets — fingerprints the run's checkpoint
/// file. [`run_mix_with`], [`run_tenant`] and [`run_sharing`] are thin
/// wrappers choosing the sources and the description.
pub fn run_sources_with(
    cfg: &SystemConfig,
    sources: Vec<CoreSource>,
    policy: Box<dyn LlcPolicy>,
    desc: &str,
    instr_target: u64,
    warmup: u64,
    ckpt: Option<&Checkpointing>,
) -> RunResult {
    assert_eq!(
        cfg.cores,
        sources.len(),
        "config/source core count mismatch"
    );
    let mut sys = CmpSystem::from_sources(cfg.clone(), policy, sources);
    let Some(ck) = ckpt.filter(|c| c.cadence.is_enabled()) else {
        return sys.run(instr_target, warmup);
    };
    let path = ck.path_for(&sys, cfg, desc, instr_target, warmup);
    // A missing checkpoint file just means there is nothing to resume yet.
    if let Some(bytes) = ck.resume.then(|| std::fs::read(&path).ok()).flatten() {
        match sys.restore(&bytes) {
            Ok(()) => eprintln!(
                "[ckpt] resumed {} from {} ({} bytes)",
                sys.policy().name(),
                path.display(),
                bytes.len()
            ),
            Err(e) => {
                // A checkpoint that parses as ours but does not apply is
                // corrupt (atomic publication rules out torn files, and
                // config changes land on a different fingerprint).
                // Remove it so the orchestrator's retry starts fresh.
                let _ = std::fs::remove_file(&path);
                panic!(
                    "cannot resume from checkpoint {}: {e} (checkpoint removed; rerun to start fresh)",
                    path.display()
                );
            }
        }
    }
    let checkpoint = |sys: &mut CmpSystem| {
        let snap = sys.snapshot();
        if let Err(e) = cmp_snap::atomic_write(&path, &snap) {
            eprintln!("[ckpt] warning: cannot write {}: {e}", path.display());
        }
    };
    let result = if crate::batch_enabled() {
        // The batched engine fires its hook every N global accesses with
        // flushed state — the same placement the streaming cadence below
        // produces, just without a per-access callback.
        sys.try_run_batched(instr_target, warmup, ck.cadence.every(), |sys| {
            checkpoint(sys);
            true
        })
        .expect("an always-continue hook cannot abort the run")
    } else {
        let mut cadence = ck.cadence;
        sys.run_with_hook(instr_target, warmup, |sys| {
            if cadence.tick() {
                checkpoint(sys);
            }
        })
    };
    // The run completed; its in-flight checkpoint is obsolete.
    let _ = std::fs::remove_file(&path);
    result
}

/// Periodic-checkpoint knobs: snapshot cadence, checkpoint directory, and
/// whether a matching in-flight checkpoint should be restored first.
///
/// Build one explicitly ([`Checkpointing::new`]) when a caller — the
/// `ascc-serve` control plane, a test — owns the configuration, or read
/// the environment ([`Checkpointing::from_env`]), which is how every
/// experiment binary inherits crash resumability without plumbing flags:
///
/// * `ASCC_CKPT_EVERY` — snapshot every N accesses (unset/0 disables);
/// * `ASCC_CKPT_DIR` — checkpoint directory (default `results/ckpt`);
/// * `ASCC_RESUME` — `1` restores a matching in-flight checkpoint first.
///
/// Checkpoints are keyed by a fingerprint of the run (policy, mix,
/// configuration, targets, seed), so concurrent sweep runs never collide
/// and a configuration change can never resume a stale snapshot.
#[derive(Debug, Clone)]
pub struct Checkpointing {
    /// Snapshot cadence in accesses (period 0 disables checkpointing).
    pub cadence: cmp_snap::Cadence,
    /// Directory receiving `ckpt-<fingerprint>.snap` files.
    pub dir: std::path::PathBuf,
    /// Restore a matching in-flight checkpoint before running.
    pub resume: bool,
}

impl Checkpointing {
    /// Checkpointing every `every` accesses into `dir`, resuming first
    /// when `resume` is set.
    pub fn new(every: u64, dir: impl Into<std::path::PathBuf>, resume: bool) -> Self {
        Checkpointing {
            cadence: cmp_snap::Cadence::new(every),
            dir: dir.into(),
            resume,
        }
    }

    /// Reads the `ASCC_CKPT_EVERY` / `ASCC_CKPT_DIR` / `ASCC_RESUME`
    /// compatibility knobs; `None` when checkpointing is not requested.
    pub fn from_env() -> Option<Self> {
        let every = std::env::var("ASCC_CKPT_EVERY")
            .ok()?
            .parse::<u64>()
            .ok()
            .filter(|&n| n > 0)?;
        Some(Checkpointing::new(
            every,
            std::env::var("ASCC_CKPT_DIR").unwrap_or_else(|_| "results/ckpt".into()),
            std::env::var("ASCC_RESUME").is_ok_and(|v| v == "1"),
        ))
    }

    fn path_for(
        &self,
        sys: &CmpSystem,
        cfg: &SystemConfig,
        desc: &str,
        instr_target: u64,
        warmup: u64,
    ) -> std::path::PathBuf {
        let key = format!(
            "{}|{desc}|{:?}|{}|{}",
            sys.policy().name(),
            cfg,
            instr_target,
            warmup
        );
        let mut h: u64 = 0xcbf29ce484222325; // FNV-1a
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        self.dir.join(format!("ckpt-{h:016x}.snap"))
    }
}

/// Specification of a single-benchmark characterisation run (Table 3 /
/// Fig. 1): which benchmark, how long to measure, warmup and seed.
///
/// Replaces the former 8-argument `run_solo_fully_assoc` free function:
/// build the spec once, then dispatch it against a set-associative system
/// ([`SoloRun::run`]) or a fully associative LLC of the same capacity
/// ([`SoloRun::run_fully_assoc`]).
///
/// ```
/// use cmp_cache::CacheGeometry;
/// use cmp_sim::{SoloRun, SystemConfig};
/// use cmp_trace::SpecBench;
///
/// let mut cfg = SystemConfig::table2(1);
/// cfg.l2 = CacheGeometry::from_capacity(64 << 10, 8, 32).unwrap();
/// let spec = SoloRun::new(SpecBench::Namd).instructions(100_000).warmup(20_000);
/// let sa = spec.run(&cfg);
/// let fa = spec.run_fully_assoc(&cfg, (64 << 10) / 32);
/// assert!(sa.instrs >= 100_000 && fa.instrs >= 100_000);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SoloRun {
    /// Benchmark to characterise.
    pub bench: SpecBench,
    /// Instructions measured after warmup.
    pub instr_target: u64,
    /// Warmup instructions excluded from the measurement.
    pub warmup: u64,
    /// Workload RNG seed.
    pub seed: u64,
}

impl SoloRun {
    /// Spec for `bench` with the default scale (1 M measured instructions
    /// after 200 k warmup, seed 42).
    pub fn new(bench: SpecBench) -> Self {
        Self {
            bench,
            instr_target: 1_000_000,
            warmup: 200_000,
            seed: 42,
        }
    }

    /// Sets the measured instruction count.
    pub fn instructions(mut self, n: u64) -> Self {
        self.instr_target = n;
        self
    }

    /// Sets the warmup instruction count.
    pub fn warmup(mut self, n: u64) -> Self {
        self.warmup = n;
        self
    }

    /// Sets the workload seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Runs the benchmark alone on a single-core system with `cfg`'s
    /// set-associative L2 (Table 3 / Fig. 1 characterisation).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores != 1`.
    pub fn run(&self, cfg: &SystemConfig) -> CoreResult {
        assert_eq!(cfg.cores, 1, "solo runs use a single core");
        let src = self.bench.source(0, self.seed);
        let mut sys =
            CmpSystem::from_sources(cfg.clone(), Box::new(PrivateBaseline::new()), vec![src]);
        let mut r = sys.run(self.instr_target, self.warmup);
        r.cores.remove(0)
    }

    /// Runs the benchmark alone against a *fully associative* LLC of
    /// `l2_lines` lines — Fig. 1's "full associativity" column. The L1
    /// geometry and L2/memory latencies come from `cfg`; its L2 geometry
    /// is ignored.
    pub fn run_fully_assoc(&self, cfg: &SystemConfig, l2_lines: usize) -> CoreResult {
        solo_fully_assoc(
            cfg.l1,
            l2_lines,
            cfg.lat_l2_local,
            cfg.lat_mem,
            self.bench,
            self.instr_target,
            self.warmup,
            self.seed,
        )
    }
}

/// Runs one benchmark alone on a single-core system (Table 3 / Fig. 1
/// characterisation). The L2 geometry comes from `cfg`.
///
/// Convenience wrapper over [`SoloRun`].
pub fn run_solo(
    cfg: &SystemConfig,
    bench: SpecBench,
    instr_target: u64,
    warmup: u64,
    seed: u64,
) -> CoreResult {
    SoloRun::new(bench)
        .instructions(instr_target)
        .warmup(warmup)
        .seed(seed)
        .run(cfg)
}

#[allow(clippy::too_many_arguments)] // private engine; the public API is SoloRun
fn solo_fully_assoc(
    l1: CacheGeometry,
    l2_lines: usize,
    lat_l2: u32,
    lat_mem: u32,
    bench: SpecBench,
    instr_target: u64,
    warmup: u64,
    seed: u64,
) -> CoreResult {
    let mut w = bench.source(0, seed);
    let mut l1c = SetAssocCache::new(l1);
    let mut l2 = FullyAssocLru::new(l2_lines);
    let mut instrs = 0u64;
    let mut cycles = 0.0f64;
    let mut carry = 0.0f64;
    let mut cnt = CoreResult {
        label: w.label.clone(),
        instrs: 0,
        cycles: 0.0,
        l2_accesses: 0,
        l2_local_hits: 0,
        l2_remote_hits: 0,
        l2_mem: 0,
        offchip_fetches: 0,
        writebacks: 0,
        l1_accesses: 0,
        l1_hits: 0,
    };
    let mut measuring = false;
    let mut start = (0u64, 0.0f64, 0u64, 0u64, 0u64, 0u64, 0u64);
    loop {
        let acc = w.feed.next_access();
        carry += 1.0 / w.cpu.mem_fraction;
        let n = (carry as u64).max(1);
        carry -= n as f64;
        instrs += n;
        cycles += n as f64 * w.cpu.base_cpi;
        cnt.l1_accesses += 1;
        let line = acc.addr.line(l1.offset_bits());
        let latency = if l1c.access(line).is_some() {
            cnt.l1_hits += 1;
            if acc.kind == AccessKind::Store {
                cnt.l2_accesses += 1;
                l2.access(line); // write-through touch
                cnt.l2_local_hits += 1;
            }
            0
        } else {
            cnt.l2_accesses += 1;
            let lat = if l2.access(line).is_hit() {
                cnt.l2_local_hits += 1;
                lat_l2
            } else {
                cnt.l2_mem += 1;
                cnt.offchip_fetches += 1;
                lat_mem
            };
            let set = l1.set_of(line);
            let way = l1c.set(set).default_victim();
            l1c.fill(
                set,
                way,
                CacheLine::demand(line, MesiState::Exclusive),
                InsertPos::Mru,
                FillKind::Demand,
            );
            if acc.kind == AccessKind::Store {
                // The store itself still writes through to L2, exactly as
                // on the L1-hit path (the refill above only fetched the
                // line); without this, store-heavy runs undercount L2
                // accesses whenever stores miss L1.
                cnt.l2_accesses += 1;
                l2.access(line);
                cnt.l2_local_hits += 1;
            }
            lat
        };
        if acc.kind == AccessKind::Load && latency > 0 {
            cycles += latency as f64 * w.cpu.overlap;
        }
        if !measuring && instrs >= warmup {
            measuring = true;
            start = (
                instrs,
                cycles,
                cnt.l2_accesses,
                cnt.l2_local_hits,
                cnt.l2_mem,
                cnt.l1_accesses,
                cnt.l1_hits,
            );
        }
        if measuring && instrs - start.0 >= instr_target {
            break;
        }
    }
    CoreResult {
        label: cnt.label,
        instrs: instrs - start.0,
        cycles: cycles - start.1,
        l2_accesses: cnt.l2_accesses - start.2,
        l2_local_hits: cnt.l2_local_hits - start.3,
        l2_remote_hits: 0,
        l2_mem: cnt.l2_mem - start.4,
        offchip_fetches: cnt.l2_mem - start.4,
        writebacks: 0,
        l1_accesses: cnt.l1_accesses - start.5,
        l1_hits: cnt.l1_hits - start.6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_trace::two_app_mixes;

    #[test]
    fn mix_workloads_are_disjoint() {
        let mix = &two_app_mixes()[0];
        let mut ws = mix_workloads(mix, 1);
        assert_eq!(ws.len(), 2);
        let a0 = ws[0].stream.next_access().addr.raw() >> CORE_SPACE_BITS;
        let a1 = ws[1].stream.next_access().addr.raw() >> CORE_SPACE_BITS;
        assert_eq!(a0, 0);
        assert_eq!(a1, 1);
    }

    #[test]
    fn solo_run_produces_stats() {
        let mut cfg = SystemConfig::table2(1);
        cfg.l2 = CacheGeometry::from_capacity(64 << 10, 8, 32).unwrap();
        let r = run_solo(&cfg, SpecBench::Namd, 200_000, 50_000, 3);
        assert!(r.instrs >= 200_000);
        // namd's 160 kB hot loop cannot fit this shrunken 64 kB L2, so the
        // CPI is memory-bound here; just check it is finite and sensible.
        assert!(r.cpi() > 0.3 && r.cpi() < 30.0, "cpi {}", r.cpi());
    }

    #[test]
    fn fully_assoc_counts_store_write_throughs_on_l1_misses() {
        // A 1-line L1 makes nearly every access an L1 miss. Every store
        // still writes through to L2, so the run's L2 access count must be
        // exactly "L1 refills + stores" — which an independent replay of
        // the same deterministic stream computes below. Before the store
        // accounting fix, stores that missed L1 skipped the write-through
        // touch and this equality did not hold.
        let l1 = CacheGeometry::new(1, 1, 32).unwrap();
        let (bench, instr_target, warmup, seed) = (SpecBench::Bzip2, 100_000u64, 10_000u64, 9u64);
        let fa = solo_fully_assoc(l1, 64, 10, 100, bench, instr_target, warmup, seed);

        let mut w = bench.workload(0, seed);
        let mut l1c = SetAssocCache::new(l1);
        let (mut instrs, mut carry) = (0u64, 0.0f64);
        let (mut l2_accesses, mut l1_misses) = (0u64, 0u64);
        let mut measuring = false;
        let mut start = (0u64, 0u64, 0u64);
        loop {
            let acc = w.stream.next_access();
            carry += 1.0 / w.cpu.mem_fraction;
            let n = (carry as u64).max(1);
            carry -= n as f64;
            instrs += n;
            let line = acc.addr.line(l1.offset_bits());
            if l1c.access(line).is_some() {
                if acc.kind == AccessKind::Store {
                    l2_accesses += 1;
                }
            } else {
                l1_misses += 1;
                l2_accesses += 1; // the refill fetch
                if acc.kind == AccessKind::Store {
                    l2_accesses += 1; // the write-through of the store itself
                }
                let set = l1.set_of(line);
                let way = l1c.set(set).default_victim();
                l1c.fill(
                    set,
                    way,
                    CacheLine::demand(line, MesiState::Exclusive),
                    InsertPos::Mru,
                    FillKind::Demand,
                );
            }
            if !measuring && instrs >= warmup {
                measuring = true;
                start = (instrs, l2_accesses, l1_misses);
            }
            if measuring && instrs - start.0 >= instr_target {
                break;
            }
        }
        assert_eq!(fa.l2_accesses, l2_accesses - start.1);
        let refills = fa.l1_accesses - fa.l1_hits;
        assert!(
            fa.l2_accesses > refills,
            "store write-throughs must be counted beyond the {refills} refills"
        );
    }

    #[test]
    fn fully_assoc_beats_set_assoc_for_same_capacity() {
        // A benchmark with conflict-prone reuse: FA removes conflict misses,
        // so FA MPKI <= set-associative MPKI at equal capacity.
        let mut cfg = SystemConfig::table2(1);
        cfg.l2 = CacheGeometry::from_capacity(256 << 10, 2, 32).unwrap();
        let spec = SoloRun::new(SpecBench::Astar)
            .instructions(300_000)
            .warmup(50_000)
            .seed(3);
        let sa = spec.run(&cfg);
        let fa = spec.run_fully_assoc(&cfg, (256 << 10) / 32);
        assert!(
            fa.l2_mpki() <= sa.l2_mpki() + 0.5,
            "FA {} vs SA {}",
            fa.l2_mpki(),
            sa.l2_mpki()
        );
    }
}
