//! # cmp-snap — versioned binary snapshot primitives
//!
//! The crash-resume layer of the reproduction serialises full architectural
//! state — cache slabs, policy counters, RNG streams, trace cursors — into a
//! single self-describing byte stream. This crate owns the wire format
//! primitives so every layer (cmp-cache, the policies, cmp-sim) encodes
//! state the same way and every reader fails loudly instead of
//! misinterpreting bytes:
//!
//! * [`SnapWriter`] — append-only little-endian encoder with tagged,
//!   length-prefixed sections;
//! * [`SnapReader`] — bounds-checked decoder; every getter returns
//!   [`SnapError`] instead of panicking on truncated or corrupt input;
//! * [`atomic_write`] — temp-file-plus-rename publication, so a kill
//!   mid-write can never leave a torn artifact behind.
//!
//! ## Format conventions
//!
//! All integers are **little-endian**. Floating-point values are stored as
//! the raw IEEE-754 bit pattern (`f64::to_bits`) so restored clocks compare
//! bit-identical to never-snapshotted ones. Variable-length payloads
//! (byte strings, UTF-8 strings, `u64` slices) carry a `u64` length prefix.
//! A *section* is `tag: u8` + `len: u64` + `len` payload bytes; readers can
//! skip sections they do not understand, which is what keeps the format
//! extensible across snapshot versions.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::io;
use std::path::Path;

/// Errors surfaced while decoding a snapshot stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The stream ended before the requested value.
    UnexpectedEof {
        /// What the reader was trying to decode.
        wanted: &'static str,
        /// Bytes needed to decode it.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The leading magic bytes did not identify a snapshot stream.
    BadMagic,
    /// The stream's format version is not one this build can decode.
    BadVersion {
        /// Version found in the stream.
        found: u16,
        /// Version this build writes and reads.
        supported: u16,
    },
    /// A section tag other than the expected one was found.
    BadSection {
        /// Tag the caller asked for.
        expected: u8,
        /// Tag actually present.
        found: u8,
    },
    /// The stream decoded, but its contents are not usable as-is
    /// (impossible lengths, invalid enum discriminants, …).
    Corrupt(String),
    /// The snapshot is well-formed but was taken from an incompatible
    /// configuration (different geometry, policy, core count, …).
    Mismatch(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::UnexpectedEof {
                wanted,
                needed,
                remaining,
            } => write!(
                f,
                "truncated snapshot: wanted {wanted} ({needed} bytes) but only {remaining} remain"
            ),
            SnapError::BadMagic => write!(f, "not a snapshot stream (bad magic)"),
            SnapError::BadVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {supported})"
            ),
            SnapError::BadSection { expected, found } => write!(
                f,
                "unexpected snapshot section: wanted tag {expected}, found tag {found}"
            ),
            SnapError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
            SnapError::Mismatch(why) => write!(f, "snapshot/configuration mismatch: {why}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only little-endian snapshot encoder.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round trip,
    /// NaN payloads included).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Appends a length-prefixed `u16` slice.
    pub fn put_u16_slice(&mut self, vs: &[u16]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u16(v);
        }
    }

    /// Writes a tagged, length-prefixed section whose payload is produced
    /// by `fill`. The length is patched in after `fill` returns, so callers
    /// never compute payload sizes by hand.
    pub fn section(&mut self, tag: u8, fill: impl FnOnce(&mut SnapWriter)) {
        self.put_u8(tag);
        self.blob(fill);
    }

    /// Writes an untagged length-prefixed block whose payload is produced
    /// by `fill` — readers can skip it wholesale via
    /// [`SnapReader::get_blob`] without decoding the contents.
    pub fn blob(&mut self, fill: impl FnOnce(&mut SnapWriter)) {
        let len_at = self.buf.len();
        self.put_u64(0); // placeholder, patched below
        fill(self);
        let payload = (self.buf.len() - len_at - 8) as u64;
        self.buf[len_at..len_at + 8].copy_from_slice(&payload.to_le_bytes());
    }
}

/// Bounds-checked little-endian snapshot decoder over a byte slice.
#[derive(Debug, Clone, Copy)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` once the whole slice has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, wanted: &'static str) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::UnexpectedEof {
                wanted,
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2, "u16")?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Reads an `i64`.
    pub fn get_i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8, "i64")?.try_into().unwrap()))
    }

    /// Reads an `f64` stored as its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `bool`, rejecting bytes other than 0/1.
    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::Corrupt(format!("bool byte {b:#x}"))),
        }
    }

    fn get_len(&mut self, what: &'static str) -> Result<usize, SnapError> {
        let len = self.get_u64()?;
        // A length cannot exceed the bytes that remain (each element is at
        // least one byte); rejecting early turns bit flips in a length
        // prefix into a clean error instead of an allocation blow-up.
        if len > self.remaining() as u64 {
            return Err(SnapError::Corrupt(format!(
                "{what} length {len} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(len as usize)
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.get_len("byte string")?;
        self.take(len, "byte string body")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.get_bytes()?)
            .map_err(|e| SnapError::Corrupt(format!("non-UTF-8 string: {e}")))
    }

    /// Reads a length-prefixed `u64` slice.
    pub fn get_u64_slice(&mut self) -> Result<Vec<u64>, SnapError> {
        let len = self.get_u64()?;
        if len
            .checked_mul(8)
            .is_none_or(|b| b > self.remaining() as u64)
        {
            return Err(SnapError::Corrupt(format!(
                "u64 slice length {len} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        (0..len).map(|_| self.get_u64()).collect()
    }

    /// Reads a length-prefixed `u16` slice.
    pub fn get_u16_slice(&mut self) -> Result<Vec<u16>, SnapError> {
        let len = self.get_u64()?;
        if len
            .checked_mul(2)
            .is_none_or(|b| b > self.remaining() as u64)
        {
            return Err(SnapError::Corrupt(format!(
                "u16 slice length {len} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        (0..len).map(|_| self.get_u16()).collect()
    }

    /// Reads a length-prefixed block written by [`SnapWriter::blob`],
    /// returning a reader over its payload and advancing past it.
    pub fn get_blob(&mut self) -> Result<SnapReader<'a>, SnapError> {
        let len = self.get_len("blob")?;
        Ok(SnapReader::new(self.take(len, "blob body")?))
    }

    /// Reads the next section header and returns `(tag, payload reader)`,
    /// advancing past the whole section. Returns `Ok(None)` at end of
    /// stream.
    pub fn next_section(&mut self) -> Result<Option<(u8, SnapReader<'a>)>, SnapError> {
        if self.is_exhausted() {
            return Ok(None);
        }
        let tag = self.get_u8()?;
        let len = self.get_len("section")?;
        let body = self.take(len, "section body")?;
        Ok(Some((tag, SnapReader::new(body))))
    }

    /// Reads the next section, requiring it to carry `expected`'s tag.
    pub fn expect_section(&mut self, expected: u8) -> Result<SnapReader<'a>, SnapError> {
        match self.next_section()? {
            Some((tag, body)) if tag == expected => Ok(body),
            Some((found, _)) => Err(SnapError::BadSection { expected, found }),
            None => Err(SnapError::UnexpectedEof {
                wanted: "section",
                needed: 9,
                remaining: 0,
            }),
        }
    }

    /// Asserts the reader consumed everything — catches writer/reader
    /// drift where a decoder silently ignores trailing state.
    pub fn finish(self, what: &'static str) -> Result<(), SnapError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(SnapError::Corrupt(format!(
                "{what}: {} unread trailing bytes",
                self.remaining()
            )))
        }
    }
}

/// Writes `bytes` to `path` atomically: the data goes to a uniquely named
/// temporary file in the same directory, is flushed, and is then renamed
/// over the destination. Readers either see the complete old file or the
/// complete new one — never a torn mix — and a kill mid-write leaves the
/// destination untouched.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    use std::io::Write;

    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("atomic_write: path {} has no file name", path.display()),
        )
    })?;
    // Same-directory temp name so the final rename never crosses a
    // filesystem boundary (cross-device renames are not atomic).
    let tmp_name = format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    );
    let tmp_path = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut f = std::fs::File::create(&tmp_path)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp_path, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp_path);
    }
    result
}

/// Checkpoint cadence: "take a snapshot every `every` steps", with the
/// stepping counter kept here so every checkpointing site (the batch
/// runner's per-access hook, the daemon's runtime-tunable cadence) counts
/// identically. `every = 0` disables ticking entirely.
///
/// The cadence is deliberately *not* serialised into snapshots: how often
/// state is captured is an operational knob, not architectural state, and
/// changing it mid-run (e.g. through the control plane's `PUT /config`)
/// must not perturb resumed results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cadence {
    every: u64,
    since: u64,
}

impl Cadence {
    /// A cadence firing every `every` ticks (`0` never fires).
    pub fn new(every: u64) -> Self {
        Cadence { every, since: 0 }
    }

    /// The configured period (`0` = disabled).
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Whether this cadence can ever fire.
    pub fn is_enabled(&self) -> bool {
        self.every > 0
    }

    /// Re-periods the cadence; the partial progress toward the next firing
    /// is reset so the next checkpoint lands a full (new) period away.
    pub fn set_every(&mut self, every: u64) {
        self.every = every;
        self.since = 0;
    }

    /// Counts one step; returns `true` when a full period has elapsed (and
    /// resets the partial count).
    pub fn tick(&mut self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.since += 1;
        if self.since >= self.every {
            self.since = 0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_fires_every_n_ticks() {
        let mut c = Cadence::new(3);
        let fires: Vec<bool> = (0..7).map(|_| c.tick()).collect();
        assert_eq!(fires, [false, false, true, false, false, true, false]);
        assert!(c.is_enabled());
        assert_eq!(c.every(), 3);
    }

    #[test]
    fn cadence_zero_never_fires() {
        let mut c = Cadence::new(0);
        assert!(!c.is_enabled());
        assert!((0..100).all(|_| !c.tick()));
    }

    #[test]
    fn cadence_reperiod_resets_progress() {
        let mut c = Cadence::new(4);
        c.tick();
        c.tick();
        c.tick();
        c.set_every(2);
        assert!(!c.tick(), "partial progress was discarded");
        assert!(c.tick(), "a full new period elapsed");
    }

    #[test]
    fn scalar_round_trip() {
        let mut w = SnapWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0xCDEF);
        w.put_u32(0xDEADBEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_str("ASCC");
        w.put_u64_slice(&[1, 2, 3]);
        w.put_u16_slice(&[7, 8]);
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0xCDEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "ASCC");
        assert_eq!(r.get_u64_slice().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_u16_slice().unwrap(), vec![7, 8]);
        r.finish("scalar round trip").unwrap();
    }

    #[test]
    fn sections_patch_lengths_and_skip() {
        let mut w = SnapWriter::new();
        w.section(1, |w| w.put_u64(11));
        w.section(2, |w| {
            w.put_str("nested payload");
            w.section(3, |w| w.put_u8(9));
        });
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        let (tag, mut body) = r.next_section().unwrap().unwrap();
        assert_eq!(tag, 1);
        assert_eq!(body.get_u64().unwrap(), 11);
        body.finish("section 1").unwrap();

        let mut body = r.expect_section(2).unwrap();
        assert_eq!(body.get_str().unwrap(), "nested payload");
        let mut inner = body.expect_section(3).unwrap();
        assert_eq!(inner.get_u8().unwrap(), 9);
        assert!(r.next_section().unwrap().is_none());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = SnapWriter::new();
        w.put_u64(5);
        let mut bytes = w.into_bytes();
        bytes.truncate(5);
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            r.get_u64(),
            Err(SnapError::UnexpectedEof { needed: 8, .. })
        ));
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX); // absurd slice length
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.get_u64_slice(), Err(SnapError::Corrupt(_))));
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.get_bytes(), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn wrong_section_tag_reported() {
        let mut w = SnapWriter::new();
        w.section(4, |w| w.put_u8(0));
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(
            r.expect_section(9).unwrap_err(),
            SnapError::BadSection {
                expected: 9,
                found: 4
            }
        );
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = std::env::temp_dir().join(format!("snap-test-{}", std::process::id()));
        let path = dir.join("out.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second version").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second version");
        // No temp litter left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
