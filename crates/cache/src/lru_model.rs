//! A fully-associative LRU cache model.
//!
//! Fig. 1's last column reports MPKI/CPI under *full associativity* — for a
//! 2 MB cache that is a 65 536-way set, far too wide for the per-set linear
//! scans of [`crate::SetAssocCache`]. This model provides O(1) lookups and
//! evictions with a hash map plus an intrusive doubly-linked list over a
//! slab, the standard LRU structure.

use crate::types::LineAddr;
use std::collections::HashMap;

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    line: LineAddr,
    prev: u32,
    next: u32,
}

/// Outcome of one access to a [`FullyAssocLru`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LruOutcome {
    /// The line was resident; it has been promoted to MRU.
    Hit,
    /// The line was not resident; it has been inserted at MRU, evicting
    /// `evicted` if the cache was full.
    Miss {
        /// The LRU line displaced to make room, if the cache was at capacity.
        evicted: Option<LineAddr>,
    },
}

impl LruOutcome {
    /// `true` on a hit.
    pub fn is_hit(self) -> bool {
        matches!(self, LruOutcome::Hit)
    }
}

/// Fully-associative LRU cache over line addresses.
///
/// # Examples
///
/// ```
/// use cmp_cache::{FullyAssocLru, LineAddr, LruOutcome};
/// let mut c = FullyAssocLru::new(2);
/// assert!(!c.access(LineAddr::new(1)).is_hit());
/// assert!(!c.access(LineAddr::new(2)).is_hit());
/// assert!(c.access(LineAddr::new(1)).is_hit());
/// // 2 is now LRU; inserting 3 evicts it.
/// assert_eq!(c.access(LineAddr::new(3)),
///            LruOutcome::Miss { evicted: Some(LineAddr::new(2)) });
/// ```
#[derive(Clone, Debug)]
pub struct FullyAssocLru {
    capacity: usize,
    map: HashMap<LineAddr, u32>,
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
}

impl FullyAssocLru {
    /// Creates an empty cache holding at most `capacity_lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_lines == 0`.
    pub fn new(capacity_lines: usize) -> Self {
        assert!(capacity_lines > 0, "capacity must be nonzero");
        FullyAssocLru {
            capacity: capacity_lines,
            map: HashMap::with_capacity(capacity_lines.min(1 << 20)),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Maximum number of resident lines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of resident lines.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `line` is resident (no recency update).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.map.contains_key(&line)
    }

    /// Accesses `line`: hit promotes to MRU; miss inserts at MRU, evicting
    /// the LRU line if at capacity.
    pub fn access(&mut self, line: LineAddr) -> LruOutcome {
        if let Some(&idx) = self.map.get(&line) {
            self.unlink(idx);
            self.push_front(idx);
            return LruOutcome::Hit;
        }
        let evicted = if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            let victim = self.nodes[lru as usize].line;
            self.unlink(lru);
            self.map.remove(&victim);
            self.free.push(lru);
            Some(victim)
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize].line = line;
                i
            }
            None => {
                self.nodes.push(Node {
                    line,
                    prev: NIL,
                    next: NIL,
                });
                (self.nodes.len() - 1) as u32
            }
        };
        self.push_front(idx);
        self.map.insert(line, idx);
        LruOutcome::Miss { evicted }
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss() {
        let mut c = FullyAssocLru::new(3);
        assert_eq!(
            c.access(LineAddr::new(1)),
            LruOutcome::Miss { evicted: None }
        );
        assert_eq!(c.access(LineAddr::new(1)), LruOutcome::Hit);
        assert_eq!(c.len(), 1);
        assert!(c.contains(LineAddr::new(1)));
        assert!(!c.contains(LineAddr::new(2)));
    }

    #[test]
    fn evicts_lru_in_order() {
        let mut c = FullyAssocLru::new(2);
        c.access(LineAddr::new(1));
        c.access(LineAddr::new(2));
        c.access(LineAddr::new(1)); // promote 1
        match c.access(LineAddr::new(3)) {
            LruOutcome::Miss { evicted } => assert_eq!(evicted, Some(LineAddr::new(2))),
            o => panic!("expected miss, got {o:?}"),
        }
        assert!(c.contains(LineAddr::new(1)));
        assert!(!c.contains(LineAddr::new(2)));
    }

    #[test]
    fn capacity_one() {
        let mut c = FullyAssocLru::new(1);
        c.access(LineAddr::new(1));
        assert_eq!(
            c.access(LineAddr::new(2)),
            LruOutcome::Miss {
                evicted: Some(LineAddr::new(1))
            }
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reuses_freed_slots() {
        let mut c = FullyAssocLru::new(2);
        for i in 0..100 {
            c.access(LineAddr::new(i));
        }
        assert_eq!(c.len(), 2);
        // The slab must not have grown past capacity + small slack.
        assert!(c.nodes.len() <= 3);
    }

    #[test]
    fn is_empty_reports() {
        let c = FullyAssocLru::new(4);
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Reference model: Vec ordered MRU-first.
    struct NaiveLru {
        cap: usize,
        order: Vec<LineAddr>,
    }

    impl NaiveLru {
        fn access(&mut self, line: LineAddr) -> LruOutcome {
            if let Some(p) = self.order.iter().position(|&l| l == line) {
                self.order.remove(p);
                self.order.insert(0, line);
                LruOutcome::Hit
            } else {
                let evicted = if self.order.len() == self.cap {
                    self.order.pop()
                } else {
                    None
                };
                self.order.insert(0, line);
                LruOutcome::Miss { evicted }
            }
        }
    }

    proptest! {
        #[test]
        fn matches_naive_model(
            cap in 1usize..8,
            accesses in prop::collection::vec(0u64..16, 0..200),
        ) {
            let mut fast = FullyAssocLru::new(cap);
            let mut slow = NaiveLru { cap, order: Vec::new() };
            for a in accesses {
                let la = LineAddr::new(a);
                prop_assert_eq!(fast.access(la), slow.access(la));
                prop_assert_eq!(fast.len(), slow.order.len());
            }
        }
    }
}
