//! Hit/miss bookkeeping, globally and (optionally) per set.

/// Aggregate statistics of one cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Accesses that found their line locally.
    pub hits: u64,
    /// Accesses that did not.
    pub misses: u64,
    /// Demand fills performed.
    pub demand_fills: u64,
    /// Fills holding a line spilled in from a peer cache.
    pub spill_fills: u64,
    /// Fills issued by a prefetcher.
    pub prefetch_fills: u64,
    /// Valid lines evicted by replacements.
    pub evictions: u64,
    /// Hits on lines whose `spilled` flag was set (remote reuse of a spill).
    pub spilled_line_hits: u64,
}

impl CacheStats {
    /// Total accesses.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; 0 when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }
}

/// Per-set hit/miss counters, used by the Fig. 2 set-profiling study and by
/// the QoS estimator.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SetStats {
    /// Hits in this set.
    pub hits: u64,
    /// Misses in this set.
    pub misses: u64,
}

impl SetStats {
    /// Total accesses to the set.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_handles_empty() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn set_stats_accumulate() {
        let mut s = SetStats::default();
        s.hits += 2;
        s.misses += 1;
        assert_eq!(s.accesses(), 3);
    }
}
