//! True-LRU recency stack for one cache set.
//!
//! The paper's insertion policies (Fig. 3) are all expressed as *positions in
//! the recency stack*: MRU insertion, LRU insertion (BIP's common case) and
//! `LRU-1` insertion (SABIP's common case). This module keeps an explicit
//! MRU-first ordering of way indices so all of them are O(associativity).

use crate::types::{InsertPos, WayIdx};

/// MRU-first ordering of the ways of one set.
///
/// The stack always contains each way index exactly once (it is a permutation
/// of `0..ways`); validity of the lines living in those ways is tracked by
/// the set itself.
///
/// # Examples
///
/// ```
/// use cmp_cache::{InsertPos, RecencyStack, WayIdx};
/// let mut r = RecencyStack::new(4);
/// r.touch_mru(WayIdx(2));
/// assert_eq!(r.mru(), WayIdx(2));
/// r.insert_at(WayIdx(3), InsertPos::LruMinus1);
/// assert_eq!(r.depth_of(WayIdx(3)), 2); // one above the LRU position
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecencyStack {
    /// Way indices ordered MRU (index 0) to LRU (last).
    order: Vec<u16>,
}

impl RecencyStack {
    /// Creates a stack for `ways` ways; way 0 starts MRU, way `ways-1` LRU.
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0`.
    pub fn new(ways: u16) -> Self {
        assert!(ways > 0, "a set must have at least one way");
        RecencyStack {
            order: (0..ways).collect(),
        }
    }

    /// Number of ways tracked.
    #[inline]
    pub fn ways(&self) -> u16 {
        self.order.len() as u16
    }

    /// The most recently used way.
    #[inline]
    pub fn mru(&self) -> WayIdx {
        WayIdx(self.order[0])
    }

    /// The least recently used way.
    #[inline]
    pub fn lru(&self) -> WayIdx {
        WayIdx(*self.order.last().expect("stack is never empty"))
    }

    /// MRU-first slice of way indices.
    #[inline]
    pub fn order(&self) -> impl Iterator<Item = WayIdx> + '_ {
        self.order.iter().map(|&w| WayIdx(w))
    }

    /// Depth of `way` in the stack (0 = MRU).
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range for this stack.
    pub fn depth_of(&self, way: WayIdx) -> usize {
        self.position(way)
    }

    /// Promotes `way` to the MRU position (a hit).
    pub fn touch_mru(&mut self, way: WayIdx) {
        self.move_to(way, 0);
    }

    /// Re-inserts `way` at the position selected by an insertion policy.
    pub fn insert_at(&mut self, way: WayIdx, pos: InsertPos) {
        let n = self.order.len();
        let depth = match pos {
            InsertPos::Mru => 0,
            InsertPos::Lru => n - 1,
            InsertPos::LruMinus1 => n.saturating_sub(2),
            InsertPos::Depth(d) => (d as usize).min(n - 1),
        };
        self.move_to(way, depth);
    }

    /// The deepest (closest to LRU) way satisfying `keep`, if any.
    ///
    /// Used by policies that restrict victim selection to a region of the
    /// set, e.g. ECC's private/shared way partitions.
    pub fn lru_where<F: FnMut(WayIdx) -> bool>(&self, mut keep: F) -> Option<WayIdx> {
        self.order
            .iter()
            .rev()
            .map(|&w| WayIdx(w))
            .find(|&w| keep(w))
    }

    fn position(&self, way: WayIdx) -> usize {
        self.order
            .iter()
            .position(|&w| w == way.0)
            .unwrap_or_else(|| panic!("{way} is not part of this {}-way stack", self.order.len()))
    }

    fn move_to(&mut self, way: WayIdx, depth: usize) {
        let cur = self.position(way);
        let w = self.order.remove(cur);
        self.order.insert(depth.min(self.order.len()), w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order_vec(r: &RecencyStack) -> Vec<u16> {
        r.order().map(|w| w.0).collect()
    }

    #[test]
    fn initial_order_is_identity() {
        let r = RecencyStack::new(4);
        assert_eq!(order_vec(&r), vec![0, 1, 2, 3]);
        assert_eq!(r.mru(), WayIdx(0));
        assert_eq!(r.lru(), WayIdx(3));
    }

    #[test]
    fn touch_promotes_to_mru() {
        let mut r = RecencyStack::new(4);
        r.touch_mru(WayIdx(2));
        assert_eq!(order_vec(&r), vec![2, 0, 1, 3]);
        r.touch_mru(WayIdx(3));
        assert_eq!(order_vec(&r), vec![3, 2, 0, 1]);
        // Touching the MRU is a no-op.
        r.touch_mru(WayIdx(3));
        assert_eq!(order_vec(&r), vec![3, 2, 0, 1]);
    }

    #[test]
    fn insert_positions_match_fig3() {
        // Fig. 3: a 4-way set; the new line E replaces the LRU victim and is
        // placed according to the insertion policy.
        let mut r = RecencyStack::new(4);
        // MRU insertion.
        let v = r.lru();
        r.insert_at(v, InsertPos::Mru);
        assert_eq!(r.mru(), v);
        // LRU insertion (BIP common case): line stays at the bottom.
        let v = r.lru();
        r.insert_at(v, InsertPos::Lru);
        assert_eq!(r.lru(), v);
        // LRU-1 insertion (SABIP): one above the bottom.
        let v = r.lru();
        r.insert_at(v, InsertPos::LruMinus1);
        assert_eq!(r.depth_of(v), 2);
    }

    #[test]
    fn depth_insertion_clamps() {
        let mut r = RecencyStack::new(4);
        r.insert_at(WayIdx(0), InsertPos::Depth(100));
        assert_eq!(r.lru(), WayIdx(0));
        r.insert_at(WayIdx(0), InsertPos::Depth(1));
        assert_eq!(r.depth_of(WayIdx(0)), 1);
    }

    #[test]
    fn lru_minus_one_on_tiny_sets() {
        // With 1 way LRU-1 degenerates to the only position.
        let mut r = RecencyStack::new(1);
        r.insert_at(WayIdx(0), InsertPos::LruMinus1);
        assert_eq!(r.mru(), WayIdx(0));
        // With 2 ways LRU-1 is the MRU position.
        let mut r = RecencyStack::new(2);
        r.insert_at(WayIdx(1), InsertPos::LruMinus1);
        assert_eq!(r.mru(), WayIdx(1));
    }

    #[test]
    fn lru_where_respects_filter() {
        let mut r = RecencyStack::new(4);
        r.touch_mru(WayIdx(3)); // order 3,0,1,2
        assert_eq!(r.lru_where(|w| w.0 % 2 == 1), Some(WayIdx(1)));
        assert_eq!(r.lru_where(|w| w.0 == 3), Some(WayIdx(3)));
        assert_eq!(r.lru_where(|_| false), None);
    }

    #[test]
    #[should_panic(expected = "not part of this")]
    fn unknown_way_panics() {
        let r = RecencyStack::new(2);
        let _ = r.depth_of(WayIdx(9));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Clone, Debug)]
    enum Op {
        Touch(u16),
        Insert(u16, u8),
    }

    fn op_strategy(ways: u16) -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..ways).prop_map(Op::Touch),
            ((0..ways), 0u8..4).prop_map(|(w, p)| Op::Insert(w, p)),
        ]
    }

    proptest! {
        /// The stack is always a permutation of 0..ways, no matter the ops.
        #[test]
        fn stack_stays_a_permutation(
            ways in 1u16..12,
            ops in prop::collection::vec(op_strategy(8), 0..64),
        ) {
            let mut r = RecencyStack::new(ways);
            for op in ops {
                match op {
                    Op::Touch(w) => r.touch_mru(WayIdx(w % ways)),
                    Op::Insert(w, p) => {
                        let pos = match p {
                            0 => InsertPos::Mru,
                            1 => InsertPos::Lru,
                            2 => InsertPos::LruMinus1,
                            _ => InsertPos::Depth((p as u16) % ways),
                        };
                        r.insert_at(WayIdx(w % ways), pos);
                    }
                }
                let mut seen: Vec<u16> = r.order().map(|w| w.0).collect();
                seen.sort_unstable();
                prop_assert_eq!(seen, (0..ways).collect::<Vec<_>>());
            }
        }

        /// After touching a way it is MRU and depths of others shift by at most one.
        #[test]
        fn touch_is_mru(ways in 1u16..12, w in 0u16..12) {
            let w = w % ways;
            let mut r = RecencyStack::new(ways);
            r.touch_mru(WayIdx(w));
            prop_assert_eq!(r.mru(), WayIdx(w));
            prop_assert_eq!(r.depth_of(WayIdx(w)), 0);
        }
    }
}
