//! True-LRU recency tracking for one cache set, packed into a single word.
//!
//! The paper's insertion policies (Fig. 3) are all expressed as *positions in
//! the recency stack*: MRU insertion, LRU insertion (BIP's common case) and
//! `LRU-1` insertion (SABIP's common case). The stack is a permutation of the
//! way indices; with associativity capped at 16 (the paper's maximum, see
//! [`crate::CacheGeometry`]) the whole permutation packs into one `u64` —
//! nibble `d` holds the way index at recency depth `d` (nibble 0 = MRU) — so
//! a set's complete replacement state costs 8 bytes in the cache arena and
//! every operation is a handful of shifts and masks instead of a `Vec`
//! splice.

use crate::types::{InsertPos, WayIdx};

/// Maximum associativity a packed recency word can track.
pub const MAX_WAYS: u16 = 16;

/// Identity permutation: nibble `i` holds value `i`.
const IDENTITY: u64 = 0xFEDC_BA98_7654_3210;

/// Mask selecting the low `bits` bits (`bits <= 64`).
#[inline]
const fn low_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// MRU-first ordering of the ways of one set, packed 4 bits per way.
///
/// The stack always contains each way index exactly once (it is a permutation
/// of `0..ways`); validity of the lines living in those ways is tracked by
/// the set itself. Nibbles at depths `>= ways` are zero, so equal stacks are
/// bitwise equal.
///
/// # Examples
///
/// ```
/// use cmp_cache::{InsertPos, RecencyStack, WayIdx};
/// let mut r = RecencyStack::new(4);
/// r.touch_mru(WayIdx(2));
/// assert_eq!(r.mru(), WayIdx(2));
/// r.insert_at(WayIdx(3), InsertPos::LruMinus1);
/// assert_eq!(r.depth_of(WayIdx(3)), 2); // one above the LRU position
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecencyStack {
    /// Way indices, 4 bits per recency depth: nibble 0 = MRU, nibble
    /// `ways-1` = LRU.
    word: u64,
    ways: u16,
}

impl RecencyStack {
    /// Creates a stack for `ways` ways; way 0 starts MRU, way `ways-1` LRU.
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0` or `ways > 16`.
    pub fn new(ways: u16) -> Self {
        RecencyStack {
            word: identity_word(ways),
            ways,
        }
    }

    /// Rebuilds a stack from a raw packed word (arena storage).
    #[inline]
    pub(crate) const fn from_word(word: u64, ways: u16) -> Self {
        RecencyStack { word, ways }
    }

    /// The raw packed word (arena storage).
    #[inline]
    pub(crate) const fn word(self) -> u64 {
        self.word
    }

    /// Mutable access to the raw packed word (arena storage).
    #[inline]
    pub(crate) fn word_mut(&mut self) -> &mut u64 {
        &mut self.word
    }

    /// Number of ways tracked.
    #[inline]
    pub fn ways(&self) -> u16 {
        self.ways
    }

    /// The most recently used way.
    #[inline]
    pub fn mru(&self) -> WayIdx {
        WayIdx((self.word & 0xF) as u16)
    }

    /// The least recently used way.
    #[inline]
    pub fn lru(&self) -> WayIdx {
        WayIdx(((self.word >> (4 * (self.ways as u32 - 1))) & 0xF) as u16)
    }

    /// MRU-first iterator of way indices.
    #[inline]
    pub fn order(&self) -> impl Iterator<Item = WayIdx> + '_ {
        let word = self.word;
        (0..self.ways as u32).map(move |d| WayIdx(((word >> (4 * d)) & 0xF) as u16))
    }

    /// Depth of `way` in the stack (0 = MRU).
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range for this stack.
    pub fn depth_of(&self, way: WayIdx) -> usize {
        self.position(way)
    }

    /// Promotes `way` to the MRU position (a hit).
    #[inline]
    pub fn touch_mru(&mut self, way: WayIdx) {
        self.word = touch_mru_word(self.word, self.ways, way);
    }

    /// Re-inserts `way` at the position selected by an insertion policy.
    pub fn insert_at(&mut self, way: WayIdx, pos: InsertPos) {
        self.word = insert_at_word(self.word, self.ways, way, pos);
    }

    /// The deepest (closest to LRU) way satisfying `keep`, if any.
    ///
    /// Used by policies that restrict victim selection to a region of the
    /// set, e.g. ECC's private/shared way partitions.
    pub fn lru_where<F: FnMut(WayIdx) -> bool>(&self, mut keep: F) -> Option<WayIdx> {
        (0..self.ways as u32)
            .rev()
            .map(|d| WayIdx(((self.word >> (4 * d)) & 0xF) as u16))
            .find(|&w| keep(w))
    }

    fn position(&self, way: WayIdx) -> usize {
        position_in_word(self.word, self.ways, way)
            .unwrap_or_else(|| panic!("{way} is not part of this {}-way stack", self.ways))
    }
}

/// Identity permutation word for `ways` ways.
///
/// # Panics
///
/// Panics if `ways == 0` or `ways > 16`.
#[inline]
pub(crate) fn identity_word(ways: u16) -> u64 {
    assert!(ways > 0, "a set must have at least one way");
    assert!(
        ways <= MAX_WAYS,
        "packed recency supports at most {MAX_WAYS} ways, got {ways}"
    );
    IDENTITY & low_mask(4 * ways as u32)
}

/// Depth of `way` in `word`, or `None` if absent from the low `ways` nibbles.
///
/// Branchless zero-nibble search: XOR spreads the target into every nibble,
/// then the carry-borrow trick `(x - 0x11…1) & !x & 0x88…8` flags zero
/// nibbles. The subtraction can flag false positives, but only at depths
/// strictly *above* the lowest true zero nibble (a borrow has to ripple
/// through that zero to corrupt anything), so `trailing_zeros` always lands
/// on the true match. Depths `>= ways` hold zero nibbles (spuriously
/// matching `way` 0), but those too sit above any true match and are
/// rejected by the final range check.
#[inline]
pub(crate) fn position_in_word(word: u64, ways: u16, way: WayIdx) -> Option<usize> {
    const ONES: u64 = 0x1111_1111_1111_1111;
    let x = word ^ (way.0 as u64).wrapping_mul(ONES);
    let m = x.wrapping_sub(ONES) & !x & 0x8888_8888_8888_8888;
    // m == 0 gives trailing_zeros() == 64 -> depth 16, outside any stack.
    let d = (m.trailing_zeros() >> 2) as usize;
    (d < ways as usize).then_some(d)
}

/// `word` with `way` promoted to depth 0; nibbles above its old depth are
/// untouched.
#[inline]
pub(crate) fn touch_mru_word(word: u64, ways: u16, way: WayIdx) -> u64 {
    let p = position_in_word(word, ways, way)
        .unwrap_or_else(|| panic!("{way} is not part of this {ways}-way stack")) as u32;
    // Shift depths 0..p one nibble deeper and drop the way in at nibble 0.
    // Branchless at p == 0 too: `below` is empty and the masks reduce to
    // replacing nibble 0 with the way it already holds.
    let below = word & low_mask(4 * p);
    (word & !low_mask(4 * (p + 1))) | (below << 4) | way.0 as u64
}

/// `word` with `way` moved to depth `depth` (same remove-then-insert
/// semantics as a `Vec` splice: intervening entries shift by one).
#[inline]
pub(crate) fn move_to_word(word: u64, ways: u16, way: WayIdx, depth: usize) -> u64 {
    let p = position_in_word(word, ways, way)
        .unwrap_or_else(|| panic!("{way} is not part of this {ways}-way stack")) as u32;
    let d = depth.min(ways as usize - 1) as u32;
    let nib = (way.0 as u64) << (4 * d);
    use std::cmp::Ordering;
    match d.cmp(&p) {
        Ordering::Equal => word,
        Ordering::Less => {
            // Depths d..p-1 sink one deeper; `way` surfaces at d.
            let span = low_mask(4 * (p + 1)) & !low_mask(4 * d);
            let shifted = (word << 4) & span & !(0xF << (4 * d));
            (word & !span) | shifted | nib
        }
        Ordering::Greater => {
            // Depths p+1..d rise one shallower; `way` sinks to d.
            let span = low_mask(4 * (d + 1)) & !low_mask(4 * p);
            let shifted = (word >> 4) & span & !(0xF << (4 * d));
            (word & !span) | shifted | nib
        }
    }
}

/// `word` with `way` re-inserted at the depth selected by `pos`.
#[inline]
pub(crate) fn insert_at_word(word: u64, ways: u16, way: WayIdx, pos: InsertPos) -> u64 {
    let n = ways as usize;
    let depth = match pos {
        InsertPos::Mru => 0,
        InsertPos::Lru => n - 1,
        InsertPos::LruMinus1 => n.saturating_sub(2),
        InsertPos::Depth(d) => (d as usize).min(n - 1),
    };
    move_to_word(word, ways, way, depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order_vec(r: &RecencyStack) -> Vec<u16> {
        r.order().map(|w| w.0).collect()
    }

    #[test]
    fn initial_order_is_identity() {
        let r = RecencyStack::new(4);
        assert_eq!(order_vec(&r), vec![0, 1, 2, 3]);
        assert_eq!(r.mru(), WayIdx(0));
        assert_eq!(r.lru(), WayIdx(3));
    }

    #[test]
    fn touch_promotes_to_mru() {
        let mut r = RecencyStack::new(4);
        r.touch_mru(WayIdx(2));
        assert_eq!(order_vec(&r), vec![2, 0, 1, 3]);
        r.touch_mru(WayIdx(3));
        assert_eq!(order_vec(&r), vec![3, 2, 0, 1]);
        // Touching the MRU is a no-op.
        r.touch_mru(WayIdx(3));
        assert_eq!(order_vec(&r), vec![3, 2, 0, 1]);
    }

    #[test]
    fn insert_positions_match_fig3() {
        // Fig. 3: a 4-way set; the new line E replaces the LRU victim and is
        // placed according to the insertion policy.
        let mut r = RecencyStack::new(4);
        // MRU insertion.
        let v = r.lru();
        r.insert_at(v, InsertPos::Mru);
        assert_eq!(r.mru(), v);
        // LRU insertion (BIP common case): line stays at the bottom.
        let v = r.lru();
        r.insert_at(v, InsertPos::Lru);
        assert_eq!(r.lru(), v);
        // LRU-1 insertion (SABIP): one above the bottom.
        let v = r.lru();
        r.insert_at(v, InsertPos::LruMinus1);
        assert_eq!(r.depth_of(v), 2);
    }

    #[test]
    fn depth_insertion_clamps() {
        let mut r = RecencyStack::new(4);
        r.insert_at(WayIdx(0), InsertPos::Depth(100));
        assert_eq!(r.lru(), WayIdx(0));
        r.insert_at(WayIdx(0), InsertPos::Depth(1));
        assert_eq!(r.depth_of(WayIdx(0)), 1);
    }

    #[test]
    fn lru_minus_one_on_tiny_sets() {
        // With 1 way LRU-1 degenerates to the only position.
        let mut r = RecencyStack::new(1);
        r.insert_at(WayIdx(0), InsertPos::LruMinus1);
        assert_eq!(r.mru(), WayIdx(0));
        // With 2 ways LRU-1 is the MRU position.
        let mut r = RecencyStack::new(2);
        r.insert_at(WayIdx(1), InsertPos::LruMinus1);
        assert_eq!(r.mru(), WayIdx(1));
    }

    #[test]
    fn lru_where_respects_filter() {
        let mut r = RecencyStack::new(4);
        r.touch_mru(WayIdx(3)); // order 3,0,1,2
        assert_eq!(r.lru_where(|w| w.0 % 2 == 1), Some(WayIdx(1)));
        assert_eq!(r.lru_where(|w| w.0 == 3), Some(WayIdx(3)));
        assert_eq!(r.lru_where(|_| false), None);
    }

    #[test]
    fn sixteen_way_full_word() {
        let mut r = RecencyStack::new(16);
        assert_eq!(r.mru(), WayIdx(0));
        assert_eq!(r.lru(), WayIdx(15));
        r.touch_mru(WayIdx(15));
        assert_eq!(r.mru(), WayIdx(15));
        assert_eq!(r.lru(), WayIdx(14));
        assert_eq!(r.depth_of(WayIdx(0)), 1);
    }

    #[test]
    #[should_panic(expected = "not part of this")]
    fn unknown_way_panics() {
        let r = RecencyStack::new(2);
        let _ = r.depth_of(WayIdx(9));
    }

    #[test]
    #[should_panic(expected = "at most 16 ways")]
    fn too_many_ways_panics() {
        let _ = RecencyStack::new(17);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Clone, Debug)]
    enum Op {
        Touch(u16),
        Insert(u16, u8),
    }

    fn op_strategy(ways: u16) -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..ways).prop_map(Op::Touch),
            ((0..ways), 0u8..4).prop_map(|(w, p)| Op::Insert(w, p)),
        ]
    }

    /// The seed implementation: an explicit MRU-first `Vec` of way indices.
    /// The packed word must follow it exactly, operation for operation.
    struct VecModel {
        order: Vec<u16>,
    }

    impl VecModel {
        fn new(ways: u16) -> Self {
            VecModel {
                order: (0..ways).collect(),
            }
        }

        fn move_to(&mut self, way: WayIdx, depth: usize) {
            let cur = self.order.iter().position(|&w| w == way.0).unwrap();
            let w = self.order.remove(cur);
            self.order.insert(depth.min(self.order.len()), w);
        }

        fn apply(&mut self, op: &Op, ways: u16) {
            match *op {
                Op::Touch(w) => self.move_to(WayIdx(w % ways), 0),
                Op::Insert(w, p) => {
                    let n = self.order.len();
                    let depth = match p {
                        0 => 0,
                        1 => n - 1,
                        2 => n.saturating_sub(2),
                        _ => ((p as u16) % ways) as usize,
                    };
                    self.move_to(WayIdx(w % ways), depth);
                }
            }
        }
    }

    proptest! {
        /// The stack is always a permutation of 0..ways, no matter the ops.
        #[test]
        fn stack_stays_a_permutation(
            ways in 1u16..=16,
            ops in prop::collection::vec(op_strategy(8), 0..64),
        ) {
            let mut r = RecencyStack::new(ways);
            for op in ops {
                match op {
                    Op::Touch(w) => r.touch_mru(WayIdx(w % ways)),
                    Op::Insert(w, p) => {
                        let pos = match p {
                            0 => InsertPos::Mru,
                            1 => InsertPos::Lru,
                            2 => InsertPos::LruMinus1,
                            _ => InsertPos::Depth((p as u16) % ways),
                        };
                        r.insert_at(WayIdx(w % ways), pos);
                    }
                }
                let mut seen: Vec<u16> = r.order().map(|w| w.0).collect();
                seen.sort_unstable();
                prop_assert_eq!(seen, (0..ways).collect::<Vec<_>>());
            }
        }

        /// After touching a way it is MRU and depths of others shift by at most one.
        #[test]
        fn touch_is_mru(ways in 1u16..=16, w in 0u16..16) {
            let w = w % ways;
            let mut r = RecencyStack::new(ways);
            r.touch_mru(WayIdx(w));
            prop_assert_eq!(r.mru(), WayIdx(w));
            prop_assert_eq!(r.depth_of(WayIdx(w)), 0);
        }

        /// The packed word tracks the seed's Vec-splice model bit for bit
        /// across arbitrary operation sequences — the recency half of the
        /// SoA arena's bit-identity contract.
        #[test]
        fn packed_matches_vec_model(
            ways in 1u16..=16,
            ops in prop::collection::vec(op_strategy(16), 0..128),
        ) {
            let mut r = RecencyStack::new(ways);
            let mut m = VecModel::new(ways);
            for op in ops {
                match op {
                    Op::Touch(w) => r.touch_mru(WayIdx(w % ways)),
                    Op::Insert(w, p) => {
                        let pos = match p {
                            0 => InsertPos::Mru,
                            1 => InsertPos::Lru,
                            2 => InsertPos::LruMinus1,
                            _ => InsertPos::Depth((p as u16) % ways),
                        };
                        r.insert_at(WayIdx(w % ways), pos);
                    }
                }
                m.apply(&op, ways);
                let packed: Vec<u16> = r.order().map(|w| w.0).collect();
                prop_assert_eq!(&packed, &m.order);
                prop_assert_eq!(r.lru(), WayIdx(*m.order.last().unwrap()));
                prop_assert_eq!(r.mru(), WayIdx(m.order[0]));
            }
        }
    }
}
