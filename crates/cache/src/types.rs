//! Fundamental newtypes shared by every layer of the simulator.
//!
//! Addresses, core identifiers and cache coordinates are wrapped in newtypes
//! so that e.g. a set index can never be passed where a way index is expected
//! (C-NEWTYPE).

use std::fmt;

/// A byte address in the simulated physical address space.
///
/// Multiprogrammed workloads place each core in a disjoint region of this
/// space (the high bits carry the core id), which makes every line trivially
/// the *last copy on chip* exactly as in the paper's multiprogrammed setting.
///
/// # Examples
///
/// ```
/// use cmp_cache::Addr;
/// let a = Addr::new(0x1040);
/// assert_eq!(a.raw(), 0x1040);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Wraps a raw byte address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Converts the byte address to a line address given `offset_bits`
    /// (log2 of the line size in bytes).
    #[inline]
    pub const fn line(self, offset_bits: u32) -> LineAddr {
        LineAddr(self.0 >> offset_bits)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line address: a byte address with the line offset stripped.
///
/// All caches in one simulated system share a line size, so a `LineAddr` is
/// meaningful across the whole hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Wraps a raw line number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs the byte address of the first byte of the line.
    #[inline]
    pub const fn to_addr(self, offset_bits: u32) -> Addr {
        Addr(self.0 << offset_bits)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(raw: u64) -> Self {
        LineAddr(raw)
    }
}

/// Identifier of a core (and, by extension, of its private caches).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CoreId(pub u8);

impl CoreId {
    /// Returns the id as a `usize`, convenient for indexing per-core vectors.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Index of a set within a cache.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SetIdx(pub u32);

impl SetIdx {
    /// Returns the index as a `usize`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SetIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "set{}", self.0)
    }
}

/// Index of a way within a set.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct WayIdx(pub u16);

impl WayIdx {
    /// Returns the index as a `usize`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WayIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "way{}", self.0)
    }
}

/// Kind of memory operation issued by a core.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load; misses stall the core.
    Load,
    /// A store; write-through below L1 and buffered, so it does not stall.
    Store,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Store`].
    #[inline]
    pub const fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

/// Position in the recency stack where a fill inserts the new line.
///
/// These are the positions used by the insertion policies of the paper
/// (Fig. 3): traditional MRU insertion, LRU insertion (most BIP fills),
/// and `LRU-1` insertion (most SABIP fills).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InsertPos {
    /// Insert at the most-recently-used end (traditional insertion).
    Mru,
    /// Insert at the least-recently-used end (BIP's common case).
    Lru,
    /// Insert one above LRU, protecting the line from the next eviction
    /// (SABIP's common case).
    LruMinus1,
    /// Insert at an explicit recency depth, `0` being MRU.
    Depth(u16),
}

/// Who is performing a fill into an LLC set.
///
/// Policies such as ECC constrain victim selection differently for demand
/// fills and for fills caused by a spilled line arriving from a peer cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FillKind {
    /// A fill on behalf of the local core (demand miss or remote-hit
    /// migration).
    Demand,
    /// A fill holding a line spilled by (or swapped with) a peer cache.
    Spill,
    /// A fill issued by a prefetcher.
    Prefetch,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_round_trip() {
        let a = Addr::new(0xdead_beef);
        let l = a.line(5);
        assert_eq!(l.raw(), 0xdead_beef >> 5);
        assert_eq!(l.to_addr(5).raw(), (0xdead_beef >> 5) << 5);
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(Addr::new(0x20).to_string(), "0x20");
        assert_eq!(format!("{:?}", Addr::new(0x20)), "Addr(0x20)");
    }

    #[test]
    fn line_addr_orders_like_raw() {
        assert!(LineAddr::new(1) < LineAddr::new(2));
        assert_eq!(LineAddr::from(7u64).raw(), 7);
    }

    #[test]
    fn core_set_way_indices() {
        assert_eq!(CoreId(3).index(), 3);
        assert_eq!(SetIdx(41).index(), 41);
        assert_eq!(WayIdx(7).index(), 7);
        assert_eq!(CoreId(2).to_string(), "core2");
        assert_eq!(SetIdx(5).to_string(), "set5");
        assert_eq!(WayIdx(1).to_string(), "way1");
    }

    #[test]
    fn access_kind_store_predicate() {
        assert!(AccessKind::Store.is_store());
        assert!(!AccessKind::Load.is_store());
    }
}
