//! The LLC cooperation-policy interface.
//!
//! Everything the paper varies between designs — who spills, where to, which
//! recency position fills use, which way is victimised — is expressed through
//! [`LlcPolicy`]. The simulator (`cmp-sim`) owns the caches and the event
//! loop and consults one policy object that observes *all* private LLCs,
//! which is exactly the vantage point the hardware mechanisms have through
//! the broadcast coherence network.

use crate::obs::{ObsEvent, PolicySnapshot};
use crate::set::SetRef;
use crate::types::{CoreId, FillKind, InsertPos, LineAddr, SetIdx, WayIdx};

/// What an L2 access observed, as reported to the policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessOutcome {
    /// The line was not resident.
    Miss,
    /// The line was resident.
    Hit {
        /// The hit line carried the spilled flag (it arrived from a peer).
        spilled: bool,
        /// Recency depth of the hit way *before* promotion (0 = MRU).
        /// Region-partitioned policies (ECC) use this for utility
        /// estimation.
        depth: u16,
    },
}

impl AccessOutcome {
    /// `true` for any hit.
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit { .. })
    }
}

/// The evicted last-copy line a spill decision is about.
///
/// Address-aware refinements (reuse-distance copy-back) need to know *which*
/// line is leaving and whether dropping it is free (`dirty == false`), not
/// just the recirculation bit the 2012-era policies consult.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SpillVictim {
    /// Address of the evicted line.
    pub addr: LineAddr,
    /// Whether the victim itself arrived via a spill — policies with bounded
    /// recirculation (CC's 1-chance forwarding) refuse to re-spill such
    /// lines.
    pub spilled: bool,
    /// Whether the victim is dirty (Modified): retiring it costs a
    /// write-back, dropping a clean line is free.
    pub dirty: bool,
}

impl SpillVictim {
    /// A clean, demand-filled victim (the common case in unit tests).
    pub const fn clean(addr: LineAddr) -> Self {
        SpillVictim {
            addr,
            spilled: false,
            dirty: false,
        }
    }
}

/// Outcome of asking a policy where to spill an evicted last-copy line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpillDecision {
    /// Spill the line into the same-index set of this peer cache.
    Spill(CoreId),
    /// The set wanted to spill but no receiver candidate exists
    /// (ASCC reacts to this by switching the set to SABIP).
    NoCandidate,
    /// The set is not operating as a spiller; evict to memory.
    NotSpiller,
}

impl SpillDecision {
    /// The chosen receiver, if any.
    pub fn target(self) -> Option<CoreId> {
        match self {
            SpillDecision::Spill(c) => Some(c),
            _ => None,
        }
    }
}

/// Behavioural interface of an LLC capacity-sharing policy.
///
/// One policy instance manages all the private LLCs of the CMP. The
/// simulator calls:
///
/// 1. [`record_access`](LlcPolicy::record_access) for every L2 access
///    (hit or miss) — this is where SSL counters, PSEL duelling counters and
///    epoch counters advance;
/// 2. [`choose_victim`](LlcPolicy::choose_victim) and
///    [`demand_insert_pos`](LlcPolicy::demand_insert_pos) when filling;
/// 3. [`spill_decision`](LlcPolicy::spill_decision) when a replacement
///    evicts the last on-chip copy of a line;
/// 4. [`spill_insert_pos`](LlcPolicy::spill_insert_pos) and
///    [`choose_victim`](LlcPolicy::choose_victim) (with
///    [`FillKind::Spill`]) on the receiving side;
/// 5. [`on_cycle`](LlcPolicy::on_cycle) periodically with the owning core's
///    clock, for cycle-based epochs such as the QoS recalculation.
pub trait LlcPolicy {
    /// Human-readable policy name, used in experiment tables.
    fn name(&self) -> &str;

    /// Type-erased view of the policy.
    ///
    /// **Deprecated for introspection**: downcasting to scrape internal
    /// state is superseded by the typed [`snapshot`](LlcPolicy::snapshot)
    /// and [`drain_events`](LlcPolicy::drain_events) APIs, which work
    /// through `dyn LlcPolicy` without naming the concrete type. `as_any`
    /// remains only as an escape hatch for policy-specific *configuration*
    /// access in bespoke tools.
    fn as_any(&self) -> &dyn std::any::Any;

    /// A typed, policy-agnostic view of the current internal state:
    /// per-core role histograms, SABIP set counts, AVGCC granularity,
    /// duelling counters, quotas — whatever this policy actually tracks
    /// (absent fields stay `None`).
    ///
    /// The default reports only the policy's name.
    fn snapshot(&self) -> PolicySnapshot {
        PolicySnapshot::new(self.name())
    }

    /// Tells the policy whether an active probe is attached.
    ///
    /// Policies that can emit [`ObsEvent`]s buffer them internally only
    /// while observed; the default (and unobserved state) is to track
    /// nothing, so unprobed runs pay no cost.
    fn set_observed(&mut self, observed: bool) {
        let _ = observed;
    }

    /// Moves any internally buffered events into `out` (in emission
    /// order). Only yields events while observation is enabled via
    /// [`set_observed`](LlcPolicy::set_observed).
    fn drain_events(&mut self, out: &mut Vec<ObsEvent>) {
        let _ = out;
    }

    /// Records the outcome of an L2 access by `core` to `set`.
    fn record_access(&mut self, core: CoreId, set: SetIdx, outcome: AccessOutcome);

    /// Address-carrying companion to
    /// [`record_access`](LlcPolicy::record_access), called immediately after
    /// it with the same outcome plus the accessed line and — on a hit — the
    /// way it was found in (pre-promotion).
    ///
    /// The set-index-only `record_access` is all the 2012-era designs need
    /// (SSL counters, PSEL duels); line-granular policies (ARC ghost lists,
    /// TinyLFU frequency sketches, reuse-distance predictors) hook in here.
    /// The default does nothing, so address-blind policies pay no cost.
    fn note_access(
        &mut self,
        core: CoreId,
        line: LineAddr,
        set: SetIdx,
        outcome: AccessOutcome,
        way: Option<WayIdx>,
    ) {
        let _ = (core, line, set, outcome, way);
    }

    /// Whether a demand fill fetched from memory may enter `core`'s `set`.
    ///
    /// Consulted only on the off-chip fetch path — remote-hit migrations and
    /// spills always land. Returning `false` bypasses the cache hierarchy
    /// entirely for this fill (neither L2 nor L1 is filled); the data is
    /// still delivered to the core and all miss counters advance. This is
    /// the TinyLFU admission-filter hook; the default admits everything.
    fn admit_fill(
        &mut self,
        core: CoreId,
        set: SetIdx,
        line: LineAddr,
        contents: SetRef<'_>,
    ) -> bool {
        let _ = (core, set, line, contents);
        true
    }

    /// Recency position for a demand fill (miss fill or remote-hit
    /// migration) into `core`'s `set`.
    fn demand_insert_pos(&mut self, core: CoreId, set: SetIdx) -> InsertPos {
        let _ = (core, set);
        InsertPos::Mru
    }

    /// Recency position for a fill holding a line spilled in from a peer.
    ///
    /// The paper's designs always MRU-insert on the receiving side: the
    /// receiver restriction (`SSL < K`) plus MRU insertion is what protects
    /// spilled lines from immediate re-eviction (§3.2).
    fn spill_insert_pos(&mut self, core: CoreId, set: SetIdx) -> InsertPos {
        let _ = (core, set);
        InsertPos::Mru
    }

    /// Decides the fate of a last-copy line evicted from `from`'s `set`.
    ///
    /// `victim` describes the evicted line: its address, whether it arrived
    /// via a spill, and whether it is dirty. Most policies only consult
    /// `victim.spilled`; copy-back refinements use the address and dirtiness
    /// to forward predicted-reuse clean victims to a peer.
    fn spill_decision(&mut self, from: CoreId, set: SetIdx, victim: SpillVictim) -> SpillDecision {
        let _ = (from, set, victim);
        SpillDecision::NotSpiller
    }

    /// Whether the requested-line/victim swap of §3.2 is enabled.
    fn swap_enabled(&self) -> bool {
        false
    }

    /// Chooses the victim way for a fill of `kind` into `core`'s `set`.
    ///
    /// The default picks an invalid way if one exists, else the LRU way.
    fn choose_victim(
        &mut self,
        core: CoreId,
        set: SetIdx,
        kind: FillKind,
        contents: SetRef<'_>,
    ) -> WayIdx {
        let _ = (core, set, kind);
        contents.default_victim()
    }

    /// Reports that a remote hit was served out of `owner`'s `set`
    /// (`was_spilled` = the supplied line had been spilled into `owner`).
    ///
    /// Region-partitioned policies (ECC) use this as the utility signal of
    /// their shared region.
    fn note_remote_hit(&mut self, owner: CoreId, set: SetIdx, was_spilled: bool) {
        let _ = (owner, set, was_spilled);
    }

    /// Periodic hook with `core`'s current cycle count (for cycle-based
    /// epochs, e.g. the QoS ratio recomputation every 100 000 cycles).
    fn on_cycle(&mut self, core: CoreId, cycles: u64) {
        let _ = (core, cycles);
    }

    /// Self-checks the policy's internal invariants (counter ranges, role
    /// consistency, granularity legality — whatever the policy maintains),
    /// returning one human-readable description per violation.
    ///
    /// Called by the differential harness after every compared step and by
    /// the simulator on every step when `cmp-sim` is built with its
    /// `debug-invariants` feature. The default has nothing to check.
    fn check_invariants(&self) -> Vec<String> {
        Vec::new()
    }

    /// Serialises all adaptive state — SSL counters, BIP flags, duelling
    /// counters, quotas, epoch counters, RNG streams — into `w`, such that
    /// [`load_state`](LlcPolicy::load_state) on a freshly constructed
    /// policy of the same configuration resumes the exact decision stream.
    ///
    /// The default writes nothing, which is correct for stateless policies
    /// ([`PrivateBaseline`]).
    fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        let _ = w;
    }

    /// Restores state captured by [`save_state`](LlcPolicy::save_state).
    ///
    /// The default accepts only an empty payload (stateless policies); a
    /// non-empty payload means the snapshot came from a different policy
    /// and is rejected rather than silently ignored.
    fn load_state(&mut self, r: &mut cmp_snap::SnapReader<'_>) -> Result<(), cmp_snap::SnapError> {
        if r.is_exhausted() {
            Ok(())
        } else {
            Err(cmp_snap::SnapError::Mismatch(format!(
                "policy {} is stateless but the snapshot carries {} bytes of policy state",
                self.name(),
                r.remaining()
            )))
        }
    }
}

/// The paper's baseline: plain private LLCs. Never spills, MRU-inserts.
///
/// With private L2s and no cooperation, co-scheduled applications cannot
/// interact, so a multiprogrammed baseline run reproduces each application's
/// solo behaviour — the property the paper's speedup normalisation relies on.
#[derive(Clone, Copy, Debug, Default)]
pub struct PrivateBaseline;

impl PrivateBaseline {
    /// Creates the baseline policy.
    pub fn new() -> Self {
        PrivateBaseline
    }
}

impl LlcPolicy for PrivateBaseline {
    fn name(&self) -> &str {
        "baseline"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn record_access(&mut self, _core: CoreId, _set: SetIdx, _outcome: AccessOutcome) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesi::MesiState;
    use crate::set::CacheLine;
    use crate::types::LineAddr;

    #[test]
    fn baseline_never_spills() {
        let mut p = PrivateBaseline::new();
        p.record_access(CoreId(0), SetIdx(3), AccessOutcome::Miss);
        assert_eq!(
            p.spill_decision(CoreId(0), SetIdx(3), SpillVictim::default()),
            SpillDecision::NotSpiller
        );
        assert!(!p.swap_enabled());
        assert_eq!(p.demand_insert_pos(CoreId(0), SetIdx(3)), InsertPos::Mru);
        assert_eq!(p.spill_insert_pos(CoreId(1), SetIdx(3)), InsertPos::Mru);
        assert_eq!(p.name(), "baseline");
    }

    #[test]
    fn default_victim_is_invalid_then_lru() {
        let mut p = PrivateBaseline::new();
        let mut set = crate::set::CacheSet::new(2);
        let v = p.choose_victim(CoreId(0), SetIdx(0), FillKind::Demand, set.view());
        set.fill(
            v,
            CacheLine::demand(LineAddr::new(1), MesiState::Exclusive),
            InsertPos::Mru,
        );
        let v2 = p.choose_victim(CoreId(0), SetIdx(0), FillKind::Demand, set.view());
        assert_ne!(v, v2);
    }

    #[test]
    fn default_snapshot_and_events_are_empty() {
        let mut p = PrivateBaseline::new();
        let snap = p.snapshot();
        assert_eq!(snap.policy, "baseline");
        assert!(snap.per_core.is_empty());
        assert!(snap.role_totals().is_none());
        p.set_observed(true);
        let mut out = Vec::new();
        p.drain_events(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn spill_decision_target_accessor() {
        assert_eq!(SpillDecision::Spill(CoreId(2)).target(), Some(CoreId(2)));
        assert_eq!(SpillDecision::NoCandidate.target(), None);
        assert_eq!(SpillDecision::NotSpiller.target(), None);
    }
}
