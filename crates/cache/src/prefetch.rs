//! Per-LLC stride prefetcher (the §6.3 sensitivity study).
//!
//! The paper adds "a 16KB stride prefetcher to each LLC". We model the
//! classic per-stream stride table: entries are tagged by a stream id (a PC
//! surrogate emitted by the workload generators), learn a stride from
//! consecutive line addresses, and issue prefetches once the stride has been
//! confirmed.

use crate::types::LineAddr;

/// Configuration of a [`StridePrefetcher`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PrefetchConfig {
    /// Number of table entries. A 16 KB budget at ~16 B/entry gives 1024.
    pub entries: usize,
    /// Prefetch degree: how many lines ahead to fetch once confident.
    pub degree: u8,
    /// Confidence needed before issuing (confirmed stride repetitions).
    pub threshold: u8,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            entries: 1024,
            degree: 2,
            threshold: 2,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct StrideEntry {
    valid: bool,
    stream: u16,
    last_line: u64,
    stride: i64,
    confidence: u8,
}

/// A stream-indexed stride prefetcher.
///
/// # Examples
///
/// ```
/// use cmp_cache::{LineAddr, PrefetchConfig, StridePrefetcher};
/// let mut pf = StridePrefetcher::new(PrefetchConfig::default());
/// let mut out = Vec::new();
/// for i in 0..4 {
///     pf.train(7, LineAddr::new(100 + 2 * i), &mut out);
/// }
/// // Stride 2 has been confirmed: the last call prefetched ahead.
/// assert!(out.contains(&LineAddr::new(108)));
/// ```
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    cfg: PrefetchConfig,
    table: Vec<StrideEntry>,
    issued: u64,
}

impl StridePrefetcher {
    /// Creates a prefetcher with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`.
    pub fn new(cfg: PrefetchConfig) -> Self {
        assert!(cfg.entries > 0, "prefetch table must have entries");
        StridePrefetcher {
            cfg,
            table: vec![StrideEntry::default(); cfg.entries],
            issued: 0,
        }
    }

    /// Number of prefetches issued so far (bandwidth accounting).
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Trains on a demand access of `stream` to `line`; pushes any prefetch
    /// candidates into `out` (which is *not* cleared).
    pub fn train(&mut self, stream: u16, line: LineAddr, out: &mut Vec<LineAddr>) {
        let idx = stream as usize % self.table.len();
        let e = &mut self.table[idx];
        if !e.valid || e.stream != stream {
            *e = StrideEntry {
                valid: true,
                stream,
                last_line: line.raw(),
                stride: 0,
                confidence: 0,
            };
            return;
        }
        let new_stride = line.raw() as i64 - e.last_line as i64;
        e.last_line = line.raw();
        if new_stride == 0 {
            return; // same line; nothing to learn
        }
        if new_stride == e.stride {
            e.confidence = e.confidence.saturating_add(1).min(7);
        } else {
            e.stride = new_stride;
            e.confidence = 0;
        }
        if e.confidence >= self.cfg.threshold {
            for d in 1..=self.cfg.degree as i64 {
                let target = line.raw() as i64 + e.stride * d;
                if target >= 0 {
                    out.push(LineAddr::new(target as u64));
                    self.issued += 1;
                }
            }
        }
    }

    /// Serialises the table and issue counter into `w` (restored by
    /// [`load_state`](StridePrefetcher::load_state) on an identically
    /// configured prefetcher).
    pub fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        w.put_u64(self.cfg.entries as u64);
        w.put_u8(self.cfg.degree);
        w.put_u8(self.cfg.threshold);
        w.put_u64(self.issued);
        for e in &self.table {
            w.put_bool(e.valid);
            w.put_u16(e.stream);
            w.put_u64(e.last_line);
            w.put_i64(e.stride);
            w.put_u8(e.confidence);
        }
    }

    /// Restores state captured by [`save_state`](StridePrefetcher::save_state).
    pub fn load_state(
        &mut self,
        r: &mut cmp_snap::SnapReader<'_>,
    ) -> Result<(), cmp_snap::SnapError> {
        let (entries, degree, threshold) = (r.get_u64()?, r.get_u8()?, r.get_u8()?);
        if (entries, degree, threshold)
            != (self.cfg.entries as u64, self.cfg.degree, self.cfg.threshold)
        {
            return Err(cmp_snap::SnapError::Mismatch(format!(
                "prefetcher config: snapshot {entries}/{degree}/{threshold}, live {}/{}/{}",
                self.cfg.entries, self.cfg.degree, self.cfg.threshold
            )));
        }
        self.issued = r.get_u64()?;
        for e in &mut self.table {
            *e = StrideEntry {
                valid: r.get_bool()?,
                stream: r.get_u16()?,
                last_line: r.get_u64()?,
                stride: r.get_i64()?,
                confidence: r.get_u8()?,
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StridePrefetcher {
        StridePrefetcher::new(PrefetchConfig {
            entries: 16,
            degree: 1,
            threshold: 2,
        })
    }

    #[test]
    fn learns_unit_stride() {
        let mut p = pf();
        let mut out = Vec::new();
        for i in 0..3 {
            p.train(1, LineAddr::new(i), &mut out);
        }
        assert!(out.is_empty(), "needs threshold confirmations first");
        p.train(1, LineAddr::new(3), &mut out);
        assert_eq!(out, vec![LineAddr::new(4)]);
        assert_eq!(p.issued(), 1);
    }

    #[test]
    fn learns_negative_stride() {
        let mut p = pf();
        let mut out = Vec::new();
        for i in (0..8).rev() {
            p.train(2, LineAddr::new(100 + i), &mut out);
        }
        assert!(out.contains(&LineAddr::new(99)));
    }

    #[test]
    fn random_pattern_stays_quiet() {
        let mut p = pf();
        let mut out = Vec::new();
        for &l in &[5u64, 90, 3, 77, 12, 60, 1, 44] {
            p.train(3, LineAddr::new(l), &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn stream_conflict_retags() {
        let mut p = StridePrefetcher::new(PrefetchConfig {
            entries: 1,
            degree: 1,
            threshold: 1,
        });
        let mut out = Vec::new();
        p.train(1, LineAddr::new(0), &mut out);
        p.train(1, LineAddr::new(1), &mut out);
        // Stream 2 maps to the same entry and steals it.
        p.train(2, LineAddr::new(50), &mut out);
        out.clear();
        p.train(1, LineAddr::new(2), &mut out);
        assert!(out.is_empty(), "entry was retagged, stream 1 must retrain");
    }

    #[test]
    fn degree_controls_lookahead() {
        let mut p = StridePrefetcher::new(PrefetchConfig {
            entries: 4,
            degree: 3,
            threshold: 1,
        });
        let mut out = Vec::new();
        p.train(0, LineAddr::new(10), &mut out);
        p.train(0, LineAddr::new(12), &mut out);
        p.train(0, LineAddr::new(14), &mut out);
        assert!(out.ends_with(&[LineAddr::new(16), LineAddr::new(18), LineAddr::new(20)]));
    }

    #[test]
    fn never_prefetches_negative_addresses() {
        let mut p = StridePrefetcher::new(PrefetchConfig {
            entries: 4,
            degree: 2,
            threshold: 1,
        });
        let mut out = Vec::new();
        p.train(0, LineAddr::new(4), &mut out);
        p.train(0, LineAddr::new(2), &mut out);
        p.train(0, LineAddr::new(0), &mut out);
        assert!(out.iter().all(|l| l.raw() < u64::MAX / 2));
    }
}
