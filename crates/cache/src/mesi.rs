//! MESI coherence states as stored in cache lines.
//!
//! Only the *state tag* lives here; the protocol transitions (what a snoop
//! does to a remote copy, when a fetch returns Exclusive vs Shared) are
//! implemented by the `cmp-coherence` crate on top of this.

use std::fmt;

/// Coherence state of a valid cache line.
///
/// The Invalid state is represented by the absence of a line (an empty way),
/// so this enum only covers valid lines.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MesiState {
    /// Modified: the only copy on chip, dirty with respect to memory.
    Modified,
    /// Exclusive: the only copy on chip, clean.
    Exclusive,
    /// Shared: possibly one of several on-chip copies, clean.
    Shared,
}

impl MesiState {
    /// Whether an eviction of a line in this state must write back to memory.
    #[inline]
    pub const fn is_dirty(self) -> bool {
        matches!(self, MesiState::Modified)
    }

    /// Whether this state guarantees the line is the only on-chip copy.
    #[inline]
    pub const fn is_exclusive_like(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }

    /// The state after the local core writes to the line.
    #[inline]
    pub const fn after_local_write(self) -> MesiState {
        MesiState::Modified
    }

    /// The state after a remote reader snoops this copy (M/E/S -> S).
    /// A Modified copy is assumed to be written back (or forwarded) on the
    /// downgrade, as in a MESI broadcast protocol.
    #[inline]
    pub const fn after_remote_read(self) -> MesiState {
        MesiState::Shared
    }

    /// One-letter mnemonic, `M`, `E` or `S`.
    pub const fn letter(self) -> char {
        match self {
            MesiState::Modified => 'M',
            MesiState::Exclusive => 'E',
            MesiState::Shared => 'S',
        }
    }
}

impl fmt::Display for MesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirtiness() {
        assert!(MesiState::Modified.is_dirty());
        assert!(!MesiState::Exclusive.is_dirty());
        assert!(!MesiState::Shared.is_dirty());
    }

    #[test]
    fn exclusivity() {
        assert!(MesiState::Modified.is_exclusive_like());
        assert!(MesiState::Exclusive.is_exclusive_like());
        assert!(!MesiState::Shared.is_exclusive_like());
    }

    #[test]
    fn transitions() {
        assert_eq!(MesiState::Shared.after_local_write(), MesiState::Modified);
        assert_eq!(MesiState::Modified.after_remote_read(), MesiState::Shared);
        assert_eq!(MesiState::Exclusive.after_remote_read(), MesiState::Shared);
    }

    #[test]
    fn display_letters() {
        assert_eq!(MesiState::Modified.to_string(), "M");
        assert_eq!(MesiState::Exclusive.to_string(), "E");
        assert_eq!(MesiState::Shared.to_string(), "S");
    }
}
