//! # cmp-cache — cache substrate for the ASCC/AVGCC reproduction
//!
//! This crate provides the building blocks every higher layer of the
//! [HPCA 2012 *Adaptive Set-Granular Cooperative Caching*] reproduction is
//! made of:
//!
//! * [`SetAssocCache`] — a set-associative cache with true-LRU recency
//!   stacks and caller-controlled insertion positions ([`InsertPos`]), so
//!   the paper's MRU / BIP / SABIP insertion policies (Fig. 3) are all
//!   expressible;
//! * [`LlcPolicy`] — the interface through which cooperation policies
//!   (ASCC, AVGCC, DSR, ECC, …) observe accesses and steer spills, victim
//!   selection and insertion;
//! * [`FullyAssocLru`] — an O(1) fully-associative LRU model for the
//!   full-associativity column of Fig. 1;
//! * [`StridePrefetcher`] — the per-LLC stride prefetcher of the §6.3
//!   sensitivity study.
//!
//! The models are *passive and deterministic*: no timing, no threading, no
//! hidden randomness. Timing and orchestration live in `cmp-sim`.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), cmp_cache::GeometryError> {
//! use cmp_cache::{CacheGeometry, CacheLine, FillKind, InsertPos, LineAddr,
//!                 MesiState, SetAssocCache};
//!
//! // The paper's baseline LLC: 1 MB, 8-way, 32 B lines.
//! let mut l2 = SetAssocCache::new(CacheGeometry::from_capacity(1 << 20, 8, 32)?);
//! let line = LineAddr::new(0x1234);
//! if l2.access(line).is_none() {
//!     let set = l2.geometry().set_of(line);
//!     let way = l2.set(set).default_victim();
//!     l2.fill(set, way, CacheLine::demand(line, MesiState::Exclusive),
//!             InsertPos::Mru, FillKind::Demand);
//! }
//! assert_eq!(l2.stats().misses, 1);
//! # Ok(())
//! # }
//! ```
//!
//! [HPCA 2012 *Adaptive Set-Granular Cooperative Caching*]:
//! https://doi.org/10.1109/HPCA.2012.6168939

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod geometry;
mod lru_model;
mod mesi;
mod obs;
mod policy;
mod prefetch;
mod recency;
mod set;
mod stats;
mod types;

pub use cache::SetAssocCache;
pub use geometry::{CacheGeometry, GeometryError};
pub use lru_model::{FullyAssocLru, LruOutcome};
pub use mesi::MesiState;
pub use obs::{
    CoreSnapshot, NullProbe, ObsEvent, ObsProbe, PolicySnapshot, RoleHistogram, VecProbe,
};
pub use policy::{AccessOutcome, LlcPolicy, PrivateBaseline, SpillDecision, SpillVictim};
pub use prefetch::{PrefetchConfig, StridePrefetcher};
pub use recency::{RecencyStack, MAX_WAYS};
pub use set::{CacheLine, CacheSet, SetMut, SetRef};
pub use stats::{CacheStats, SetStats};
pub use types::{AccessKind, Addr, CoreId, FillKind, InsertPos, LineAddr, SetIdx, WayIdx};
