//! Set-level views over the packed cache arena, plus an owned single set.
//!
//! Since the SoA refactor the lines of a cache live in flat arrays owned by
//! [`crate::SetAssocCache`] (see its module docs for the layout): a tag word,
//! a metadata byte and one packed recency word per set. The types here are
//! the *set-granular* API over that storage — the granularity at which the
//! paper's policies reason:
//!
//! - [`SetRef`] — a read-only view of one set (what victim-selection hooks
//!   receive),
//! - [`SetMut`] — a mutable view (fills, invalidations, state rewrites),
//! - [`CacheSet`] — a self-contained owned set using the same encoding, for
//!   policy unit tests and the Fig. 3 insertion demo.
//!
//! A [`CacheLine`] is *materialized* from the arrays on demand; it is a value,
//! not a reference into the cache.

use crate::mesi::MesiState;
use crate::recency::RecencyStack;
use crate::types::{InsertPos, LineAddr, WayIdx};

/// Tag sentinel marking an invalid (empty) way.
///
/// Line addresses are byte addresses shifted right by the line-offset bits,
/// so a real line can never occupy the all-ones pattern.
pub(crate) const TAG_INVALID: u64 = u64::MAX;

/// Metadata bits 0–1: MESI state (M=0, E=1, S=2).
const META_STATE_MASK: u8 = 0b011;
/// Metadata bit 2: the line arrived by being spilled from a peer cache.
const META_SPILLED: u8 = 0b100;

/// Packs a line's state and spilled flag into a metadata byte.
#[inline]
pub(crate) const fn encode_meta(state: MesiState, spilled: bool) -> u8 {
    let s = match state {
        MesiState::Modified => 0,
        MesiState::Exclusive => 1,
        MesiState::Shared => 2,
    };
    s | if spilled { META_SPILLED } else { 0 }
}

/// Recovers the MESI state from a metadata byte.
#[inline]
pub(crate) const fn decode_state(meta: u8) -> MesiState {
    match meta & META_STATE_MASK {
        0 => MesiState::Modified,
        1 => MesiState::Exclusive,
        _ => MesiState::Shared,
    }
}

/// Materializes the line stored as `(tag, meta)`, if the way is valid.
#[inline]
pub(crate) const fn decode_line(tag: u64, meta: u8) -> Option<CacheLine> {
    if tag == TAG_INVALID {
        None
    } else {
        Some(CacheLine {
            addr: LineAddr::new(tag),
            state: decode_state(meta),
            spilled: meta & META_SPILLED != 0,
        })
    }
}

/// A valid line resident in a cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheLine {
    /// Line address (full tag; the simulator never truncates tags).
    pub addr: LineAddr,
    /// MESI state of this copy.
    pub state: MesiState,
    /// Whether the line arrived by being spilled from a peer cache.
    ///
    /// This is both the statistic behind §6.4 (hits per spilled line) and the
    /// per-block *shared bit* our ECC implementation uses (§5 of the paper).
    pub spilled: bool,
}

impl CacheLine {
    /// Creates a demand-filled (not spilled) line.
    pub const fn demand(addr: LineAddr, state: MesiState) -> Self {
        CacheLine {
            addr,
            state,
            spilled: false,
        }
    }

    /// Creates a line that arrived via a spill.
    pub const fn spilled(addr: LineAddr, state: MesiState) -> Self {
        CacheLine {
            addr,
            state,
            spilled: true,
        }
    }

    /// The arena metadata byte for this line.
    #[inline]
    pub(crate) const fn meta(&self) -> u8 {
        encode_meta(self.state, self.spilled)
    }
}

/// Read-only view of one cache set: its tags, metadata and recency order.
///
/// `SetRef` is `Copy` (three words); methods materialize [`CacheLine`] values
/// on demand rather than handing out references into the arena.
#[derive(Clone, Copy, Debug)]
pub struct SetRef<'a> {
    tags: &'a [u64],
    meta: &'a [u8],
    recency: RecencyStack,
}

impl<'a> SetRef<'a> {
    #[inline]
    pub(crate) fn new(tags: &'a [u64], meta: &'a [u8], recency: RecencyStack) -> Self {
        debug_assert_eq!(tags.len(), meta.len());
        debug_assert_eq!(tags.len(), recency.ways() as usize);
        SetRef {
            tags,
            meta,
            recency,
        }
    }

    /// Associativity of the set.
    #[inline]
    pub fn ways(&self) -> u16 {
        self.tags.len() as u16
    }

    /// Looks up a line address; returns its way if present.
    #[inline]
    pub fn find(&self, addr: LineAddr) -> Option<WayIdx> {
        let raw = addr.raw();
        self.tags
            .iter()
            .position(|&t| t == raw)
            .map(|w| WayIdx(w as u16))
    }

    /// The line stored in `way`, if valid (materialized by value).
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    #[inline]
    pub fn line(&self, way: WayIdx) -> Option<CacheLine> {
        decode_line(self.tags[way.index()], self.meta[way.index()])
    }

    /// Number of valid lines.
    pub fn valid_count(&self) -> u16 {
        self.tags.iter().filter(|&&t| t != TAG_INVALID).count() as u16
    }

    /// Number of valid lines satisfying `pred`.
    pub fn count_where<F: FnMut(&CacheLine) -> bool>(&self, mut pred: F) -> u16 {
        self.iter().filter(|(_, l)| pred(l)).count() as u16
    }

    /// First invalid way, if any.
    pub fn invalid_way(&self) -> Option<WayIdx> {
        self.tags
            .iter()
            .position(|&t| t == TAG_INVALID)
            .map(|w| WayIdx(w as u16))
    }

    /// Default victim: an invalid way if one exists, otherwise the LRU way.
    pub fn default_victim(&self) -> WayIdx {
        self.invalid_way().unwrap_or_else(|| self.recency.lru())
    }

    /// Deepest valid way whose line satisfies `pred` (for region-constrained
    /// victim selection, e.g. ECC's private/shared partitions).
    pub fn lru_valid_where<F: FnMut(&CacheLine) -> bool>(&self, mut pred: F) -> Option<WayIdx> {
        self.recency
            .lru_where(|w| self.line(w).is_some_and(|l| pred(&l)))
    }

    /// Recency depth of `way` (0 = MRU).
    pub fn depth_of(&self, way: WayIdx) -> usize {
        self.recency.depth_of(way)
    }

    /// The set's recency stack (a copy; 8 bytes).
    #[inline]
    pub fn recency(&self) -> RecencyStack {
        self.recency
    }

    /// Iterates over the valid lines of the set (way order, not recency
    /// order), materializing each line by value.
    pub fn iter(&self) -> impl Iterator<Item = (WayIdx, CacheLine)> + 'a {
        self.tags
            .iter()
            .zip(self.meta)
            .enumerate()
            .filter_map(|(w, (&t, &m))| decode_line(t, m).map(|l| (WayIdx(w as u16), l)))
    }
}

/// Mutable view of one cache set.
///
/// Mutations keep the arena encoding and the recency permutation consistent;
/// reads go through [`SetMut::as_ref`].
#[derive(Debug)]
pub struct SetMut<'a> {
    tags: &'a mut [u64],
    meta: &'a mut [u8],
    recency: &'a mut u64,
}

impl<'a> SetMut<'a> {
    #[inline]
    pub(crate) fn new(tags: &'a mut [u64], meta: &'a mut [u8], recency: &'a mut u64) -> Self {
        debug_assert_eq!(tags.len(), meta.len());
        SetMut {
            tags,
            meta,
            recency,
        }
    }

    /// Associativity of the set.
    #[inline]
    pub fn ways(&self) -> u16 {
        self.tags.len() as u16
    }

    /// Read-only view of the same set (reborrows this view).
    #[inline]
    pub fn as_ref(&self) -> SetRef<'_> {
        SetRef::new(
            self.tags,
            self.meta,
            RecencyStack::from_word(*self.recency, self.tags.len() as u16),
        )
    }

    #[inline]
    fn stack(&self) -> RecencyStack {
        RecencyStack::from_word(*self.recency, self.tags.len() as u16)
    }

    /// Promotes `way` to MRU (a hit).
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    #[inline]
    pub fn touch(&mut self, way: WayIdx) {
        let mut r = self.stack();
        r.touch_mru(way);
        *self.recency = r.word();
    }

    /// Replaces the line in `way` with `line`, placing it at `pos` in the
    /// recency stack, and returns the previous occupant (the eviction).
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn fill(&mut self, way: WayIdx, line: CacheLine, pos: InsertPos) -> Option<CacheLine> {
        debug_assert_ne!(
            line.addr.raw(),
            TAG_INVALID,
            "line address collides with the invalid-tag sentinel"
        );
        let i = way.index();
        let evicted = decode_line(self.tags[i], self.meta[i]);
        self.tags[i] = line.addr.raw();
        self.meta[i] = line.meta();
        let mut r = self.stack();
        r.insert_at(way, pos);
        *self.recency = r.word();
        evicted
    }

    /// Invalidates `way`, returning the line that was there.
    ///
    /// The freed way is demoted to the LRU position so it is the next victim.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn invalidate_way(&mut self, way: WayIdx) -> Option<CacheLine> {
        let i = way.index();
        let line = decode_line(self.tags[i], self.meta[i]);
        self.tags[i] = TAG_INVALID;
        self.meta[i] = 0;
        let mut r = self.stack();
        r.insert_at(way, InsertPos::Lru);
        *self.recency = r.word();
        line
    }

    /// Rewrites the MESI state of the valid line in `way`.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range or invalid.
    pub fn set_state(&mut self, way: WayIdx, state: MesiState) {
        let i = way.index();
        assert_ne!(self.tags[i], TAG_INVALID, "{way} holds no valid line");
        self.meta[i] = encode_meta(state, self.meta[i] & META_SPILLED != 0);
    }

    /// Clears the spilled flag of the valid line in `way` (local reuse).
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range or invalid.
    pub fn clear_spilled(&mut self, way: WayIdx) {
        let i = way.index();
        assert_ne!(self.tags[i], TAG_INVALID, "{way} holds no valid line");
        self.meta[i] &= !META_SPILLED;
    }
}

/// One self-contained cache set: `ways` encoded lines and their recency
/// ordering, stored exactly as a set of the arena would be.
///
/// The simulated caches do not contain `CacheSet`s — their sets live in the
/// [`crate::SetAssocCache`] arena and are accessed through [`SetRef`] /
/// [`SetMut`]. This owned type serves standalone uses (policy unit tests,
/// the Fig. 3 insertion walkthrough) and mirrors the full set API.
#[derive(Clone, Debug)]
pub struct CacheSet {
    tags: Box<[u64]>,
    meta: Box<[u8]>,
    recency: RecencyStack,
}

impl CacheSet {
    /// Creates an empty set with the given associativity.
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0` or `ways > 16`.
    pub fn new(ways: u16) -> Self {
        CacheSet {
            tags: vec![TAG_INVALID; ways as usize].into_boxed_slice(),
            meta: vec![0; ways as usize].into_boxed_slice(),
            recency: RecencyStack::new(ways),
        }
    }

    /// Read-only view of this set, as a policy hook would receive it.
    #[inline]
    pub fn view(&self) -> SetRef<'_> {
        SetRef::new(&self.tags, &self.meta, self.recency)
    }

    /// Mutable view of this set.
    #[inline]
    pub fn view_mut(&mut self) -> SetMut<'_> {
        SetMut::new(&mut self.tags, &mut self.meta, self.recency.word_mut())
    }

    /// Associativity of the set.
    #[inline]
    pub fn ways(&self) -> u16 {
        self.tags.len() as u16
    }

    /// Looks up a line address; returns its way if present.
    pub fn find(&self, addr: LineAddr) -> Option<WayIdx> {
        self.view().find(addr)
    }

    /// The line stored in `way`, if valid (materialized by value).
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn line(&self, way: WayIdx) -> Option<CacheLine> {
        self.view().line(way)
    }

    /// Number of valid lines.
    pub fn valid_count(&self) -> u16 {
        self.view().valid_count()
    }

    /// Number of valid lines satisfying `pred`.
    pub fn count_where<F: FnMut(&CacheLine) -> bool>(&self, pred: F) -> u16 {
        self.view().count_where(pred)
    }

    /// First invalid way, if any.
    pub fn invalid_way(&self) -> Option<WayIdx> {
        self.view().invalid_way()
    }

    /// Default victim: an invalid way if one exists, otherwise the LRU way.
    pub fn default_victim(&self) -> WayIdx {
        self.view().default_victim()
    }

    /// Deepest valid way whose line satisfies `pred` (for region-constrained
    /// victim selection, e.g. ECC's private/shared partitions).
    pub fn lru_valid_where<F: FnMut(&CacheLine) -> bool>(&self, pred: F) -> Option<WayIdx> {
        self.view().lru_valid_where(pred)
    }

    /// Promotes `way` to MRU (a hit).
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn touch(&mut self, way: WayIdx) {
        self.recency.touch_mru(way);
    }

    /// Replaces the line in `way` with `line`, placing it at `pos` in the
    /// recency stack, and returns the previous occupant (the eviction).
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn fill(&mut self, way: WayIdx, line: CacheLine, pos: InsertPos) -> Option<CacheLine> {
        self.view_mut().fill(way, line, pos)
    }

    /// Invalidates `way`, returning the line that was there.
    ///
    /// The freed way is demoted to the LRU position so it is the next victim.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn invalidate_way(&mut self, way: WayIdx) -> Option<CacheLine> {
        self.view_mut().invalidate_way(way)
    }

    /// Recency depth of `way` (0 = MRU).
    pub fn depth_of(&self, way: WayIdx) -> usize {
        self.recency.depth_of(way)
    }

    /// Read-only view of the recency stack.
    pub fn recency(&self) -> &RecencyStack {
        &self.recency
    }

    /// Iterates over the valid lines of the set (way order, not recency
    /// order).
    pub fn iter(&self) -> impl Iterator<Item = (WayIdx, CacheLine)> + '_ {
        self.view().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> CacheLine {
        CacheLine::demand(LineAddr::new(n), MesiState::Exclusive)
    }

    #[test]
    fn fill_and_find() {
        let mut s = CacheSet::new(4);
        assert_eq!(s.valid_count(), 0);
        let v = s.default_victim();
        assert_eq!(s.fill(v, line(10), InsertPos::Mru), None);
        assert_eq!(s.find(LineAddr::new(10)), Some(v));
        assert_eq!(s.find(LineAddr::new(11)), None);
        assert_eq!(s.valid_count(), 1);
    }

    #[test]
    fn victim_prefers_invalid_ways() {
        let mut s = CacheSet::new(2);
        let v0 = s.default_victim();
        s.fill(v0, line(1), InsertPos::Mru);
        let v1 = s.default_victim();
        assert_ne!(v0, v1, "second fill must use the remaining invalid way");
        s.fill(v1, line(2), InsertPos::Mru);
        // Now full: victim is the LRU way, which holds line 1.
        let v2 = s.default_victim();
        assert_eq!(s.line(v2).unwrap().addr, LineAddr::new(1));
    }

    #[test]
    fn eviction_returns_old_line() {
        let mut s = CacheSet::new(1);
        s.fill(WayIdx(0), line(1), InsertPos::Mru);
        let old = s.fill(WayIdx(0), line(2), InsertPos::Mru);
        assert_eq!(old.unwrap().addr, LineAddr::new(1));
    }

    #[test]
    fn invalidate_demotes_way() {
        let mut s = CacheSet::new(2);
        s.fill(WayIdx(0), line(1), InsertPos::Mru);
        s.fill(WayIdx(1), line(2), InsertPos::Mru);
        // Way 1 (line 2) is MRU. Invalidate it: it becomes the next victim.
        let gone = s.invalidate_way(WayIdx(1)).unwrap();
        assert_eq!(gone.addr, LineAddr::new(2));
        assert_eq!(s.default_victim(), WayIdx(1));
        assert_eq!(s.valid_count(), 1);
    }

    #[test]
    fn lru_valid_where_filters_by_line() {
        let mut s = CacheSet::new(3);
        s.fill(WayIdx(0), line(1), InsertPos::Mru);
        s.fill(
            WayIdx(1),
            CacheLine::spilled(LineAddr::new(2), MesiState::Modified),
            InsertPos::Mru,
        );
        s.fill(WayIdx(2), line(3), InsertPos::Mru);
        // Deepest spilled line is in way 1.
        assert_eq!(s.lru_valid_where(|l| l.spilled), Some(WayIdx(1)));
        // Deepest non-spilled is way 0 (filled first, never touched).
        assert_eq!(s.lru_valid_where(|l| !l.spilled), Some(WayIdx(0)));
        assert_eq!(s.lru_valid_where(|l| l.addr.raw() > 100), None);
    }

    #[test]
    fn touch_changes_victim() {
        let mut s = CacheSet::new(2);
        s.fill(WayIdx(0), line(1), InsertPos::Mru);
        s.fill(WayIdx(1), line(2), InsertPos::Mru);
        s.touch(WayIdx(0));
        assert_eq!(s.default_victim(), WayIdx(1));
    }

    #[test]
    fn count_where_sees_flags() {
        let mut s = CacheSet::new(4);
        s.fill(WayIdx(0), line(1), InsertPos::Mru);
        s.fill(
            WayIdx(1),
            CacheLine::spilled(LineAddr::new(2), MesiState::Exclusive),
            InsertPos::Mru,
        );
        assert_eq!(s.count_where(|l| l.spilled), 1);
        assert_eq!(s.count_where(|l| !l.spilled), 1);
    }

    #[test]
    fn iter_yields_valid_lines() {
        let mut s = CacheSet::new(3);
        s.fill(WayIdx(1), line(5), InsertPos::Mru);
        let collected: Vec<_> = s.iter().map(|(w, l)| (w, l.addr.raw())).collect();
        assert_eq!(collected, vec![(WayIdx(1), 5)]);
    }

    #[test]
    fn meta_round_trips_every_state() {
        for state in [MesiState::Modified, MesiState::Exclusive, MesiState::Shared] {
            for spilled in [false, true] {
                let l = CacheLine {
                    addr: LineAddr::new(42),
                    state,
                    spilled,
                };
                assert_eq!(decode_line(42, l.meta()), Some(l));
            }
        }
        assert_eq!(decode_line(TAG_INVALID, 0), None);
    }

    #[test]
    fn set_mut_state_edits() {
        let mut s = CacheSet::new(2);
        s.fill(
            WayIdx(0),
            CacheLine::spilled(LineAddr::new(7), MesiState::Shared),
            InsertPos::Mru,
        );
        let mut m = s.view_mut();
        m.set_state(WayIdx(0), MesiState::Modified);
        m.clear_spilled(WayIdx(0));
        let l = s.line(WayIdx(0)).unwrap();
        assert_eq!(l.state, MesiState::Modified);
        assert!(!l.spilled);
    }
}
