//! One set of a set-associative cache: lines plus a recency stack.

use crate::mesi::MesiState;
use crate::recency::RecencyStack;
use crate::types::{InsertPos, LineAddr, WayIdx};

/// A valid line resident in a cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheLine {
    /// Line address (full tag; the simulator never truncates tags).
    pub addr: LineAddr,
    /// MESI state of this copy.
    pub state: MesiState,
    /// Whether the line arrived by being spilled from a peer cache.
    ///
    /// This is both the statistic behind §6.4 (hits per spilled line) and the
    /// per-block *shared bit* our ECC implementation uses (§5 of the paper).
    pub spilled: bool,
}

impl CacheLine {
    /// Creates a demand-filled (not spilled) line.
    pub const fn demand(addr: LineAddr, state: MesiState) -> Self {
        CacheLine {
            addr,
            state,
            spilled: false,
        }
    }

    /// Creates a line that arrived via a spill.
    pub const fn spilled(addr: LineAddr, state: MesiState) -> Self {
        CacheLine {
            addr,
            state,
            spilled: true,
        }
    }
}

/// One cache set: `ways` optional lines and their recency ordering.
#[derive(Clone, Debug)]
pub struct CacheSet {
    lines: Vec<Option<CacheLine>>,
    recency: RecencyStack,
}

impl CacheSet {
    /// Creates an empty set with the given associativity.
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0`.
    pub fn new(ways: u16) -> Self {
        CacheSet {
            lines: vec![None; ways as usize],
            recency: RecencyStack::new(ways),
        }
    }

    /// Associativity of the set.
    #[inline]
    pub fn ways(&self) -> u16 {
        self.lines.len() as u16
    }

    /// Looks up a line address; returns its way if present.
    pub fn find(&self, addr: LineAddr) -> Option<WayIdx> {
        self.lines
            .iter()
            .position(|l| l.map(|l| l.addr) == Some(addr))
            .map(|w| WayIdx(w as u16))
    }

    /// The line stored in `way`, if valid.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn line(&self, way: WayIdx) -> Option<&CacheLine> {
        self.lines[way.index()].as_ref()
    }

    /// Mutable access to the line stored in `way`, if valid.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn line_mut(&mut self, way: WayIdx) -> Option<&mut CacheLine> {
        self.lines[way.index()].as_mut()
    }

    /// Number of valid lines.
    pub fn valid_count(&self) -> u16 {
        self.lines.iter().filter(|l| l.is_some()).count() as u16
    }

    /// Number of valid lines satisfying `pred`.
    pub fn count_where<F: FnMut(&CacheLine) -> bool>(&self, mut pred: F) -> u16 {
        self.lines
            .iter()
            .filter(|l| l.as_ref().is_some_and(&mut pred))
            .count() as u16
    }

    /// First invalid way, if any.
    pub fn invalid_way(&self) -> Option<WayIdx> {
        self.lines
            .iter()
            .position(|l| l.is_none())
            .map(|w| WayIdx(w as u16))
    }

    /// Default victim: an invalid way if one exists, otherwise the LRU way.
    pub fn default_victim(&self) -> WayIdx {
        self.invalid_way().unwrap_or_else(|| self.recency.lru())
    }

    /// Deepest valid way whose line satisfies `pred` (for region-constrained
    /// victim selection, e.g. ECC's private/shared partitions).
    pub fn lru_valid_where<F: FnMut(&CacheLine) -> bool>(&self, mut pred: F) -> Option<WayIdx> {
        self.recency
            .lru_where(|w| self.lines[w.index()].as_ref().is_some_and(&mut pred))
    }

    /// Promotes `way` to MRU (a hit).
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn touch(&mut self, way: WayIdx) {
        self.recency.touch_mru(way);
    }

    /// Replaces the line in `way` with `line`, placing it at `pos` in the
    /// recency stack, and returns the previous occupant (the eviction).
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn fill(&mut self, way: WayIdx, line: CacheLine, pos: InsertPos) -> Option<CacheLine> {
        let evicted = self.lines[way.index()].replace(line);
        self.recency.insert_at(way, pos);
        evicted
    }

    /// Invalidates `way`, returning the line that was there.
    ///
    /// The freed way is demoted to the LRU position so it is the next victim.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn invalidate_way(&mut self, way: WayIdx) -> Option<CacheLine> {
        let line = self.lines[way.index()].take();
        self.recency.insert_at(way, InsertPos::Lru);
        line
    }

    /// Recency depth of `way` (0 = MRU).
    pub fn depth_of(&self, way: WayIdx) -> usize {
        self.recency.depth_of(way)
    }

    /// Read-only view of the recency stack.
    pub fn recency(&self) -> &RecencyStack {
        &self.recency
    }

    /// Iterates over the valid lines of the set (way order, not recency
    /// order).
    pub fn iter(&self) -> impl Iterator<Item = (WayIdx, &CacheLine)> {
        self.lines
            .iter()
            .enumerate()
            .filter_map(|(w, l)| l.as_ref().map(|l| (WayIdx(w as u16), l)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> CacheLine {
        CacheLine::demand(LineAddr::new(n), MesiState::Exclusive)
    }

    #[test]
    fn fill_and_find() {
        let mut s = CacheSet::new(4);
        assert_eq!(s.valid_count(), 0);
        let v = s.default_victim();
        assert_eq!(s.fill(v, line(10), InsertPos::Mru), None);
        assert_eq!(s.find(LineAddr::new(10)), Some(v));
        assert_eq!(s.find(LineAddr::new(11)), None);
        assert_eq!(s.valid_count(), 1);
    }

    #[test]
    fn victim_prefers_invalid_ways() {
        let mut s = CacheSet::new(2);
        let v0 = s.default_victim();
        s.fill(v0, line(1), InsertPos::Mru);
        let v1 = s.default_victim();
        assert_ne!(v0, v1, "second fill must use the remaining invalid way");
        s.fill(v1, line(2), InsertPos::Mru);
        // Now full: victim is the LRU way, which holds line 1.
        let v2 = s.default_victim();
        assert_eq!(s.line(v2).unwrap().addr, LineAddr::new(1));
    }

    #[test]
    fn eviction_returns_old_line() {
        let mut s = CacheSet::new(1);
        s.fill(WayIdx(0), line(1), InsertPos::Mru);
        let old = s.fill(WayIdx(0), line(2), InsertPos::Mru);
        assert_eq!(old.unwrap().addr, LineAddr::new(1));
    }

    #[test]
    fn invalidate_demotes_way() {
        let mut s = CacheSet::new(2);
        s.fill(WayIdx(0), line(1), InsertPos::Mru);
        s.fill(WayIdx(1), line(2), InsertPos::Mru);
        // Way 1 (line 2) is MRU. Invalidate it: it becomes the next victim.
        let gone = s.invalidate_way(WayIdx(1)).unwrap();
        assert_eq!(gone.addr, LineAddr::new(2));
        assert_eq!(s.default_victim(), WayIdx(1));
        assert_eq!(s.valid_count(), 1);
    }

    #[test]
    fn lru_valid_where_filters_by_line() {
        let mut s = CacheSet::new(3);
        s.fill(WayIdx(0), line(1), InsertPos::Mru);
        s.fill(
            WayIdx(1),
            CacheLine::spilled(LineAddr::new(2), MesiState::Modified),
            InsertPos::Mru,
        );
        s.fill(WayIdx(2), line(3), InsertPos::Mru);
        // Deepest spilled line is in way 1.
        assert_eq!(s.lru_valid_where(|l| l.spilled), Some(WayIdx(1)));
        // Deepest non-spilled is way 0 (filled first, never touched).
        assert_eq!(s.lru_valid_where(|l| !l.spilled), Some(WayIdx(0)));
        assert_eq!(s.lru_valid_where(|l| l.addr.raw() > 100), None);
    }

    #[test]
    fn touch_changes_victim() {
        let mut s = CacheSet::new(2);
        s.fill(WayIdx(0), line(1), InsertPos::Mru);
        s.fill(WayIdx(1), line(2), InsertPos::Mru);
        s.touch(WayIdx(0));
        assert_eq!(s.default_victim(), WayIdx(1));
    }

    #[test]
    fn count_where_sees_flags() {
        let mut s = CacheSet::new(4);
        s.fill(WayIdx(0), line(1), InsertPos::Mru);
        s.fill(
            WayIdx(1),
            CacheLine::spilled(LineAddr::new(2), MesiState::Exclusive),
            InsertPos::Mru,
        );
        assert_eq!(s.count_where(|l| l.spilled), 1);
        assert_eq!(s.count_where(|l| !l.spilled), 1);
    }

    #[test]
    fn iter_yields_valid_lines() {
        let mut s = CacheSet::new(3);
        s.fill(WayIdx(1), line(5), InsertPos::Mru);
        let collected: Vec<_> = s.iter().map(|(w, l)| (w, l.addr.raw())).collect();
        assert_eq!(collected, vec![(WayIdx(1), 5)]);
    }
}
