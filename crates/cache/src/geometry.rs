//! Cache geometry: capacity, associativity, line size and index mapping.

use crate::types::{LineAddr, SetIdx};
use std::fmt;

/// Error returned when a [`CacheGeometry`] would be malformed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GeometryError {
    /// The line size is zero or not a power of two.
    BadLineSize(u64),
    /// The number of sets is zero or not a power of two.
    BadSetCount(u64),
    /// The associativity is zero or exceeds 16 (the packed-recency limit).
    BadWays(u64),
    /// Capacity is not divisible into `sets * ways * line_bytes`.
    Indivisible {
        /// Requested capacity in bytes.
        capacity: u64,
        /// `ways * line_bytes` for the requested shape.
        per_set_bytes: u64,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GeometryError::BadLineSize(l) => {
                write!(f, "line size {l} is not a nonzero power of two")
            }
            GeometryError::BadSetCount(s) => {
                write!(f, "set count {s} is not a nonzero power of two")
            }
            GeometryError::BadWays(w) => {
                write!(f, "associativity {w} must be nonzero and at most 16")
            }
            GeometryError::Indivisible {
                capacity,
                per_set_bytes,
            } => write!(
                f,
                "capacity {capacity} is not a power-of-two multiple of {per_set_bytes} bytes per set"
            ),
        }
    }
}

impl std::error::Error for GeometryError {}

/// Shape of a set-associative cache.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), cmp_cache::GeometryError> {
/// use cmp_cache::CacheGeometry;
/// // The paper's baseline L2: 1 MB, 8-way, 32-byte lines -> 4096 sets.
/// let g = CacheGeometry::from_capacity(1 << 20, 8, 32)?;
/// assert_eq!(g.sets(), 4096);
/// assert_eq!(g.ways(), 8);
/// assert_eq!(g.capacity_bytes(), 1 << 20);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheGeometry {
    sets: u32,
    ways: u16,
    line_bytes: u32,
}

impl CacheGeometry {
    /// Builds a geometry from an explicit set count.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if `sets` or `line_bytes` is not a nonzero
    /// power of two, or `ways` is zero or exceeds 16 (the cache arena packs
    /// a set's recency order into a single `u64`, 4 bits per way; the paper
    /// never models more than 16 ways).
    pub fn new(sets: u32, ways: u16, line_bytes: u32) -> Result<Self, GeometryError> {
        if line_bytes == 0 || !line_bytes.is_power_of_two() {
            return Err(GeometryError::BadLineSize(line_bytes as u64));
        }
        if sets == 0 || !sets.is_power_of_two() {
            return Err(GeometryError::BadSetCount(sets as u64));
        }
        if ways == 0 || ways > crate::recency::MAX_WAYS {
            return Err(GeometryError::BadWays(ways as u64));
        }
        Ok(CacheGeometry {
            sets,
            ways,
            line_bytes,
        })
    }

    /// Builds a geometry from a total capacity in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if the capacity does not divide into a
    /// power-of-two number of sets of `ways * line_bytes` bytes.
    pub fn from_capacity(capacity: u64, ways: u16, line_bytes: u32) -> Result<Self, GeometryError> {
        if line_bytes == 0 || !line_bytes.is_power_of_two() {
            return Err(GeometryError::BadLineSize(line_bytes as u64));
        }
        if ways == 0 || ways > crate::recency::MAX_WAYS {
            return Err(GeometryError::BadWays(ways as u64));
        }
        let per_set = ways as u64 * line_bytes as u64;
        if per_set == 0 || !capacity.is_multiple_of(per_set) {
            return Err(GeometryError::Indivisible {
                capacity,
                per_set_bytes: per_set,
            });
        }
        let sets = capacity / per_set;
        if sets == 0 || !sets.is_power_of_two() || sets > u32::MAX as u64 {
            return Err(GeometryError::BadSetCount(sets));
        }
        Ok(CacheGeometry {
            sets: sets as u32,
            ways,
            line_bytes,
        })
    }

    /// Number of sets.
    #[inline]
    pub const fn sets(&self) -> u32 {
        self.sets
    }

    /// Associativity.
    #[inline]
    pub const fn ways(&self) -> u16 {
        self.ways
    }

    /// Line size in bytes.
    #[inline]
    pub const fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// log2 of the line size: the number of offset bits.
    #[inline]
    pub const fn offset_bits(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }

    /// log2 of the set count: the number of index bits.
    #[inline]
    pub const fn index_bits(&self) -> u32 {
        self.sets.trailing_zeros()
    }

    /// Total capacity in bytes.
    #[inline]
    pub const fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes as u64
    }

    /// Total number of lines.
    #[inline]
    pub const fn lines(&self) -> u64 {
        self.sets as u64 * self.ways as u64
    }

    /// Maps a line address to its set index (low index bits of the line
    /// address, the conventional modulo mapping).
    #[inline]
    pub const fn set_of(&self, line: LineAddr) -> SetIdx {
        SetIdx((line.raw() & (self.sets as u64 - 1)) as u32)
    }

    /// Returns the same geometry with a different associativity, keeping the
    /// set count. This models the way-masking experiments of Fig. 1/Fig. 2,
    /// where 2..=16 ways of a 16-way cache are enabled.
    pub fn with_ways(&self, ways: u16) -> Result<Self, GeometryError> {
        CacheGeometry::new(self.sets, ways, self.line_bytes)
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cap = self.capacity_bytes();
        if cap >= 1 << 20 && cap.is_multiple_of(1 << 20) {
            write!(
                f,
                "{}MB/{}-way/{}B ({} sets)",
                cap >> 20,
                self.ways,
                self.line_bytes,
                self.sets
            )
        } else {
            write!(
                f,
                "{}kB/{}-way/{}B ({} sets)",
                cap >> 10,
                self.ways,
                self.line_bytes,
                self.sets
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_l2_shape() {
        let g = CacheGeometry::from_capacity(1 << 20, 8, 32).unwrap();
        assert_eq!(g.sets(), 4096);
        assert_eq!(g.index_bits(), 12);
        assert_eq!(g.offset_bits(), 5);
        assert_eq!(g.lines(), 32768);
        assert_eq!(g.to_string(), "1MB/8-way/32B (4096 sets)");
    }

    #[test]
    fn l1_shape() {
        let g = CacheGeometry::from_capacity(32 << 10, 4, 32).unwrap();
        assert_eq!(g.sets(), 256);
        assert_eq!(g.to_string(), "32kB/4-way/32B (256 sets)");
    }

    #[test]
    fn set_mapping_uses_low_bits() {
        let g = CacheGeometry::new(4096, 8, 32).unwrap();
        assert_eq!(g.set_of(LineAddr::new(0)), SetIdx(0));
        assert_eq!(g.set_of(LineAddr::new(4095)), SetIdx(4095));
        assert_eq!(g.set_of(LineAddr::new(4096)), SetIdx(0));
        assert_eq!(g.set_of(LineAddr::new(4097 + 4096)), SetIdx(1));
    }

    #[test]
    fn with_ways_preserves_sets() {
        let g = CacheGeometry::from_capacity(2 << 20, 16, 32).unwrap();
        assert_eq!(g.sets(), 4096);
        let g2 = g.with_ways(2).unwrap();
        assert_eq!(g2.sets(), 4096);
        assert_eq!(g2.capacity_bytes(), 256 << 10);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(matches!(
            CacheGeometry::new(100, 8, 32),
            Err(GeometryError::BadSetCount(100))
        ));
        assert!(matches!(
            CacheGeometry::new(128, 8, 48),
            Err(GeometryError::BadLineSize(48))
        ));
        assert!(matches!(
            CacheGeometry::new(128, 0, 32),
            Err(GeometryError::BadWays(0))
        ));
        assert!(matches!(
            CacheGeometry::new(128, 17, 32),
            Err(GeometryError::BadWays(17))
        ));
        assert!(matches!(
            CacheGeometry::from_capacity(1 << 20, 32, 32),
            Err(GeometryError::BadWays(32))
        ));
        assert!(CacheGeometry::from_capacity(1000, 8, 32).is_err());
    }

    #[test]
    fn errors_display() {
        let e = CacheGeometry::from_capacity(1000, 8, 32).unwrap_err();
        assert!(e.to_string().contains("1000"));
    }
}
