//! The observability layer: typed probes and policy snapshots.
//!
//! The paper's mechanisms are *dynamic* — SSL counters drift between the
//! spiller/receiver classes, AVGCC re-adapts its granularity every epoch,
//! QoS inhibition switches on and off — and none of that is visible in
//! end-of-run aggregates. This module provides two typed introspection
//! surfaces:
//!
//! * [`ObsProbe`] — a sink for [`ObsEvent`]s emitted by the simulator, the
//!   caches and the policies as the run executes. The default
//!   [`NullProbe`] compiles to nothing (the simulator is generic over the
//!   probe, so an unobserved run carries zero cost).
//! * [`PolicySnapshot`] — a point-in-time, policy-agnostic view of a
//!   policy's internal state ([`LlcPolicy::snapshot`](crate::LlcPolicy::snapshot)),
//!   replacing `as_any` downcasting as the public introspection surface.

use crate::types::{CoreId, FillKind, SetIdx};

/// One observable simulation event.
///
/// Events carry enough context to rebuild per-core, per-set and core→core
/// time series; they are `Copy` and cheap to buffer.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ObsEvent {
    /// An L2 access hit in the local cache.
    LocalHit {
        /// Requesting core.
        core: CoreId,
        /// Accessed set.
        set: SetIdx,
        /// The hit line had been spilled in from a peer.
        spilled: bool,
    },
    /// An L2 access missed the local cache (it may still hit remotely).
    Miss {
        /// Requesting core.
        core: CoreId,
        /// Accessed set.
        set: SetIdx,
    },
    /// A local miss was served out of a peer's cache.
    RemoteHit {
        /// Requesting core.
        requester: CoreId,
        /// Core whose cache supplied the line.
        owner: CoreId,
        /// Accessed set.
        set: SetIdx,
        /// The supplied line had been spilled into `owner`.
        was_spilled: bool,
    },
    /// A local miss went to memory.
    MemFetch {
        /// Requesting core.
        core: CoreId,
        /// Accessed set.
        set: SetIdx,
    },
    /// A line was filled into a cache.
    Fill {
        /// Cache that received the line.
        core: CoreId,
        /// Destination set.
        set: SetIdx,
        /// Why the line was filled.
        kind: FillKind,
    },
    /// A valid line was displaced by a fill.
    Eviction {
        /// Cache that evicted.
        core: CoreId,
        /// Source set.
        set: SetIdx,
        /// The evicted line was dirty.
        dirty: bool,
    },
    /// A dirty line left the chip.
    Writeback {
        /// Core whose cache wrote back.
        core: CoreId,
    },
    /// A last-copy victim was spilled into a peer (src → dst).
    Spill {
        /// Spilling core.
        from: CoreId,
        /// Receiving core.
        to: CoreId,
        /// Set index (same on both sides).
        set: SetIdx,
    },
    /// A spiller set found no receiver candidate (the capacity problem).
    SpillNoCandidate {
        /// Spilling core.
        from: CoreId,
        /// Set index.
        set: SetIdx,
    },
    /// The §3.2 requested/victim swap fired.
    Swap {
        /// Core that requested the line.
        requester: CoreId,
        /// Core that supplied it (and received the victim).
        supplier: CoreId,
        /// Set index.
        set: SetIdx,
    },
    /// A counter's insertion policy switched (MRU ↔ BIP/SABIP).
    InsertionModeSwitch {
        /// Affected core.
        core: CoreId,
        /// Counter index within the core's table.
        counter: u32,
        /// `true` = deep insertion (BIP/SABIP) engaged; `false` = back to
        /// MRU.
        deep: bool,
    },
    /// AVGCC changed a cache's granularity (§4).
    Regranularized {
        /// Affected core.
        core: CoreId,
        /// New `D` (log2 sets-per-counter).
        granularity_log2: u8,
        /// Counters now in use.
        counters: u32,
    },
    /// The QoS epoch recomputed a cache's throttle ratio (§8).
    QosRatioUpdate {
        /// Affected core.
        core: CoreId,
        /// New ratio in `[0, 1]` (1.0 = uninhibited, 0.0 = fully
        /// inhibited).
        ratio: f64,
    },
}

impl ObsEvent {
    /// The primary core this event concerns (the requester/spiller side).
    pub fn core(&self) -> CoreId {
        match *self {
            ObsEvent::LocalHit { core, .. }
            | ObsEvent::Miss { core, .. }
            | ObsEvent::MemFetch { core, .. }
            | ObsEvent::Fill { core, .. }
            | ObsEvent::Eviction { core, .. }
            | ObsEvent::Writeback { core }
            | ObsEvent::InsertionModeSwitch { core, .. }
            | ObsEvent::Regranularized { core, .. }
            | ObsEvent::QosRatioUpdate { core, .. } => core,
            ObsEvent::RemoteHit { requester, .. } | ObsEvent::Swap { requester, .. } => requester,
            ObsEvent::Spill { from, .. } | ObsEvent::SpillNoCandidate { from, .. } => from,
        }
    }
}

/// A sink for [`ObsEvent`]s.
///
/// The simulator is generic over its probe, so the compiler monomorphizes
/// every event emission: with [`NullProbe`] the calls vanish entirely.
pub trait ObsProbe {
    /// Whether this probe actually consumes events. The simulator uses
    /// this to skip event *construction* (and to leave policies in their
    /// non-buffering mode) when the probe is a no-op.
    const ACTIVE: bool = true;

    /// Receives one event.
    fn record(&mut self, event: ObsEvent);

    /// Called at every observation-epoch boundary with the epoch index
    /// (0-based) and a fresh policy snapshot.
    fn on_epoch(&mut self, index: u64, snapshot: &PolicySnapshot) {
        let _ = (index, snapshot);
    }
}

/// The zero-cost default probe: ignores everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullProbe;

impl ObsProbe for NullProbe {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: ObsEvent) {}
}

/// A `&mut` probe forwards to the probe it borrows (lets callers keep
/// ownership while handing the probe to a system).
impl<P: ObsProbe> ObsProbe for &mut P {
    const ACTIVE: bool = P::ACTIVE;

    #[inline(always)]
    fn record(&mut self, event: ObsEvent) {
        (**self).record(event);
    }

    fn on_epoch(&mut self, index: u64, snapshot: &PolicySnapshot) {
        (**self).on_epoch(index, snapshot);
    }
}

/// Per-set role class counts (the paper's receiver/neutral/spiller SSL
/// classification, or the analogous duelling classes of DSR).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RoleHistogram {
    /// Sets currently classified as receivers.
    pub receiver: u32,
    /// Sets currently classified as neutral.
    pub neutral: u32,
    /// Sets currently classified as spillers.
    pub spiller: u32,
}

impl RoleHistogram {
    /// Total sets counted.
    pub fn total(&self) -> u32 {
        self.receiver + self.neutral + self.spiller
    }
}

/// Point-in-time view of one core's share of a policy's state.
///
/// Every field is optional: a policy fills in what it actually has, and
/// consumers render what is present. This is what keeps the snapshot
/// policy-agnostic.
#[derive(Clone, PartialEq, Debug)]
pub struct CoreSnapshot {
    /// The core this snapshot describes.
    pub core: CoreId,
    /// Per-set role class histogram (SSL classes, DSR duel classes, …).
    pub roles: Option<RoleHistogram>,
    /// Sets currently under deep (BIP/SABIP) insertion.
    pub sabip_sets: Option<u32>,
    /// Current `D` — log2 sets-per-counter (AVGCC; static for ASCC).
    pub granularity_log2: Option<u8>,
    /// SSL counters currently in use.
    pub counters_in_use: Option<u32>,
    /// QoS throttle ratio in `[0, 1]` (QoS-AVGCC).
    pub qos_ratio: Option<f64>,
    /// Duelling-counter value (DSR / DIP PSEL).
    pub psel: Option<u32>,
    /// Follower-set behaviour the duel currently selects (e.g.
    /// `"spiller"`, `"receiver"`, `"lru"`, `"bip"`).
    pub follower_mode: Option<&'static str>,
    /// Ways reserved for the local core (ECC).
    pub private_quota: Option<u16>,
    /// Ways lent out to peers (ECC).
    pub shared_quota: Option<u16>,
}

impl CoreSnapshot {
    /// An empty snapshot for `core`.
    pub fn new(core: CoreId) -> Self {
        CoreSnapshot {
            core,
            roles: None,
            sabip_sets: None,
            granularity_log2: None,
            counters_in_use: None,
            qos_ratio: None,
            psel: None,
            follower_mode: None,
            private_quota: None,
            shared_quota: None,
        }
    }
}

/// Point-in-time view of a policy's internal state
/// ([`LlcPolicy::snapshot`](crate::LlcPolicy::snapshot)).
#[derive(Clone, PartialEq, Debug)]
pub struct PolicySnapshot {
    /// The policy's name.
    pub policy: String,
    /// One entry per core, core order.
    pub per_core: Vec<CoreSnapshot>,
    /// Times a spiller found no receiver and engaged the capacity policy.
    pub capacity_activations: Option<u64>,
    /// Total AVGCC granularity changes across all caches.
    pub granularity_changes: Option<u64>,
    /// ECC repartition events.
    pub repartitions: Option<u64>,
    /// Spills refused by bounded-recirculation rules (CC).
    pub spills_refused: Option<u64>,
    /// Whether incremental bookkeeping matches a from-scratch recount
    /// (AVGCC's `A`/`B` counters); `None` when the policy has no such
    /// invariant.
    pub ab_consistent: Option<bool>,
    /// Ghost-list hits (ARC's B1 + B2).
    pub ghost_hits: Option<u64>,
    /// Fills rejected by an admission filter (TinyLFU).
    pub admission_rejections: Option<u64>,
    /// Frequency-sketch halving resets (TinyLFU).
    pub sketch_resets: Option<u64>,
    /// Clean-victim copy-backs forwarded to a peer (RD-CB).
    pub copy_backs: Option<u64>,
}

impl PolicySnapshot {
    /// An empty snapshot for a policy called `name`.
    pub fn new(name: &str) -> Self {
        PolicySnapshot {
            policy: name.to_string(),
            per_core: Vec::new(),
            capacity_activations: None,
            granularity_changes: None,
            repartitions: None,
            spills_refused: None,
            ab_consistent: None,
            ghost_hits: None,
            admission_rejections: None,
            sketch_resets: None,
            copy_backs: None,
        }
    }

    /// The snapshot of one core, if present.
    pub fn core(&self, core: CoreId) -> Option<&CoreSnapshot> {
        self.per_core.iter().find(|c| c.core == core)
    }

    /// Sums the per-core role histograms, if any core reports one.
    pub fn role_totals(&self) -> Option<RoleHistogram> {
        let mut total = RoleHistogram::default();
        let mut any = false;
        for c in &self.per_core {
            if let Some(h) = c.roles {
                total.receiver += h.receiver;
                total.neutral += h.neutral;
                total.spiller += h.spiller;
                any = true;
            }
        }
        any.then_some(total)
    }
}

/// A probe that retains every event (handy in tests).
#[derive(Clone, Debug, Default)]
pub struct VecProbe {
    /// All recorded events, in order.
    pub events: Vec<ObsEvent>,
    /// `(epoch index, snapshot)` pairs, in order.
    pub epochs: Vec<(u64, PolicySnapshot)>,
}

impl ObsProbe for VecProbe {
    fn record(&mut self, event: ObsEvent) {
        self.events.push(event);
    }

    fn on_epoch(&mut self, index: u64, snapshot: &PolicySnapshot) {
        self.epochs.push((index, snapshot.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_inactive() {
        // &mut P forwarding keeps P's activity; the compile-time constants
        // are checked in a const context so the assertions are not trivial.
        const { assert!(!NullProbe::ACTIVE) };
        const { assert!(VecProbe::ACTIVE) };
        const { assert!(!<&mut NullProbe as ObsProbe>::ACTIVE) };
        const { assert!(<&mut VecProbe as ObsProbe>::ACTIVE) };
    }

    #[test]
    fn event_primary_core() {
        let ev = ObsEvent::Spill {
            from: CoreId(2),
            to: CoreId(0),
            set: SetIdx(7),
        };
        assert_eq!(ev.core(), CoreId(2));
        let ev = ObsEvent::RemoteHit {
            requester: CoreId(1),
            owner: CoreId(3),
            set: SetIdx(0),
            was_spilled: true,
        };
        assert_eq!(ev.core(), CoreId(1));
    }

    #[test]
    fn vec_probe_retains_events_and_epochs() {
        let mut p = VecProbe::default();
        p.record(ObsEvent::Writeback { core: CoreId(0) });
        p.on_epoch(0, &PolicySnapshot::new("x"));
        assert_eq!(p.events.len(), 1);
        assert_eq!(p.epochs.len(), 1);
        assert_eq!(p.epochs[0].1.policy, "x");
    }

    #[test]
    fn snapshot_role_totals() {
        let mut s = PolicySnapshot::new("ASCC");
        let mut c0 = CoreSnapshot::new(CoreId(0));
        c0.roles = Some(RoleHistogram {
            receiver: 10,
            neutral: 2,
            spiller: 4,
        });
        let mut c1 = CoreSnapshot::new(CoreId(1));
        c1.roles = Some(RoleHistogram {
            receiver: 1,
            neutral: 0,
            spiller: 15,
        });
        s.per_core = vec![c0, c1];
        let t = s.role_totals().unwrap();
        assert_eq!((t.receiver, t.neutral, t.spiller), (11, 2, 19));
        assert_eq!(t.total(), 32);
        assert_eq!(s.core(CoreId(1)).unwrap().roles.unwrap().spiller, 15);
        assert!(s.core(CoreId(9)).is_none());
    }

    #[test]
    fn mut_ref_probe_forwards() {
        let mut inner = VecProbe::default();
        {
            let mut probe = &mut inner;
            probe.record(ObsEvent::Miss {
                core: CoreId(0),
                set: SetIdx(1),
            });
            let snap = PolicySnapshot::new("p");
            ObsProbe::on_epoch(&mut probe, 3, &snap);
        }
        assert_eq!(inner.events.len(), 1);
        assert_eq!(inner.epochs[0].0, 3);
    }
}
