//! The set-associative cache model, stored as a contiguous SoA arena.
//!
//! # Arena layout
//!
//! A cache of `S` sets × `W` ways owns exactly three flat allocations:
//!
//! ```text
//! tags:    [u64; S*W]   line address per way, u64::MAX = invalid
//! meta:    [u8;  S*W]   bits 0-1 MESI state (M=0/E=1/S=2), bit 2 spilled
//! recency: [u64; S]     packed LRU permutation, 4 bits per way (nibble 0 = MRU)
//! ```
//!
//! Set `s` occupies `tags[s*W .. (s+1)*W]` / `meta[s*W .. (s+1)*W]` and
//! `recency[s]`. Compared to the seed layout (a `Vec` of per-set structs,
//! each owning a `Vec<Option<CacheLine>>` and a `Vec<u16>` recency stack —
//! two heap allocations per set), a lookup now touches one contiguous tag
//! row plus a single byte and word, and a whole 32 Ki-set L2's replacement
//! state fits in 256 KiB of tags instead of ~65 K scattered allocations.
//!
//! The set-granular API is preserved through the [`SetRef`]/[`SetMut`] view
//! types; behaviour is bit-identical to the seed layout (asserted by the
//! `engine_golden` integration test).

use crate::geometry::CacheGeometry;
use crate::mesi::MesiState;
use crate::obs::{ObsEvent, ObsProbe};
use crate::recency::{identity_word, RecencyStack};
use crate::set::{decode_line, encode_meta, CacheLine, SetMut, SetRef, TAG_INVALID};
use crate::stats::{CacheStats, SetStats};
use crate::types::{CoreId, FillKind, InsertPos, LineAddr, SetIdx, WayIdx};
use cmp_snap::{SnapError, SnapReader, SnapWriter};

/// Way holding `raw` in one set's tag row, if resident.
///
/// Branchless replacement for `iter().position()`: the accumulating
/// compare visits every way unconditionally, which the compiler turns into
/// conditional moves (and, for the common 4/8/16-way rows, vector
/// compares) instead of a data-dependent early-exit branch per way. A line
/// is resident at most once per cache, so keeping the last match is
/// equivalent to keeping the first.
#[inline]
fn find_way(tags: &[u64], raw: u64) -> Option<usize> {
    let mut found = usize::MAX;
    for (w, &t) in tags.iter().enumerate() {
        found = if t == raw { w } else { found };
    }
    (found != usize::MAX).then_some(found)
}

/// A set-associative cache with true-LRU recency tracking and pluggable
/// insertion positions.
///
/// The cache is a *passive* model: it answers lookups, performs fills into a
/// victim way chosen by the caller (usually through an [`crate::LlcPolicy`])
/// and reports evictions. All timing, coherence and spill orchestration live
/// above it in `cmp-sim`. See the [module docs](self) for the storage layout.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), cmp_cache::GeometryError> {
/// use cmp_cache::{CacheGeometry, FillKind, InsertPos, LineAddr, MesiState, SetAssocCache};
///
/// let mut l2 = SetAssocCache::new(CacheGeometry::from_capacity(1 << 20, 8, 32)?);
/// let line = LineAddr::new(0x40);
/// assert!(l2.access(line).is_none()); // cold miss
/// let set = l2.geometry().set_of(line);
/// let victim = l2.set(set).default_victim();
/// l2.fill(set, victim, cmp_cache::CacheLine::demand(line, MesiState::Exclusive),
///         InsertPos::Mru, FillKind::Demand);
/// assert!(l2.access(line).is_some()); // now a hit
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    /// Line address per way, `S*W` entries, [`TAG_INVALID`] = empty way.
    tags: Box<[u64]>,
    /// Packed state/spilled byte per way, `S*W` entries.
    meta: Box<[u8]>,
    /// Packed recency permutation per set, `S` entries.
    recency: Box<[u64]>,
    stats: CacheStats,
    set_stats: Option<Vec<SetStats>>,
}

impl SetAssocCache {
    /// Creates an empty cache of the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let lines = geometry.lines() as usize;
        let sets = geometry.sets() as usize;
        SetAssocCache {
            geometry,
            tags: vec![TAG_INVALID; lines].into_boxed_slice(),
            meta: vec![0; lines].into_boxed_slice(),
            recency: vec![identity_word(geometry.ways()); sets].into_boxed_slice(),
            stats: CacheStats::default(),
            set_stats: None,
        }
    }

    /// Enables per-set hit/miss counters (needed by the Fig. 2 study).
    pub fn with_set_stats(mut self) -> Self {
        self.set_stats = Some(vec![SetStats::default(); self.geometry.sets() as usize]);
        self
    }

    /// The cache's geometry.
    #[inline]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Aggregate statistics.
    #[inline]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Per-set statistics, if enabled via [`SetAssocCache::with_set_stats`].
    pub fn set_stats(&self) -> Option<&[SetStats]> {
        self.set_stats.as_deref()
    }

    /// Zeroes all statistics (end of warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        if let Some(ss) = &mut self.set_stats {
            ss.iter_mut().for_each(|s| *s = SetStats::default());
        }
    }

    /// Byte range of `set`'s ways within the tag/meta arrays.
    #[inline]
    fn row(&self, set: SetIdx) -> std::ops::Range<usize> {
        let w = self.geometry.ways() as usize;
        let base = set.index() * w;
        base..base + w
    }

    /// Read-only view of a set.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[inline]
    pub fn set(&self, set: SetIdx) -> SetRef<'_> {
        let r = self.row(set);
        SetRef::new(
            &self.tags[r.clone()],
            &self.meta[r],
            RecencyStack::from_word(self.recency[set.index()], self.geometry.ways()),
        )
    }

    /// Mutable view of a set.
    ///
    /// Set-level mutation does not maintain the aggregate statistics — use
    /// the cache-level [`access`](SetAssocCache::access) /
    /// [`fill`](SetAssocCache::fill) /
    /// [`invalidate`](SetAssocCache::invalidate) entry points in simulation
    /// code.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[inline]
    pub fn set_mut(&mut self, set: SetIdx) -> SetMut<'_> {
        let r = self.row(set);
        SetMut::new(
            &mut self.tags[r.clone()],
            &mut self.meta[r],
            &mut self.recency[set.index()],
        )
    }

    /// Looks a line up *without* touching recency or statistics — the snoop
    /// path used by the coherence bus.
    pub fn probe(&self, line: LineAddr) -> Option<(SetIdx, WayIdx)> {
        let set = self.geometry.set_of(line);
        let raw = line.raw();
        find_way(&self.tags[self.row(set)], raw).map(|w| (set, WayIdx(w as u16)))
    }

    /// Hints the hardware prefetcher at the tag row of `set` — used by the
    /// batched engine to pull the next access's set slab into cache while
    /// the current access is still being processed. Pure performance hint:
    /// no simulator-visible state changes.
    #[inline]
    pub fn prefetch_set(&self, set: SetIdx) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `row(set)` is in bounds for `tags`, so the pointer is
        // derived from a live allocation; prefetch dereferences nothing.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let base = set.index() * self.geometry.ways() as usize;
            _mm_prefetch(self.tags.as_ptr().add(base).cast::<i8>(), _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = set;
    }

    /// Performs a local access: on a hit the line is promoted to MRU and its
    /// way returned; statistics are updated either way.
    ///
    /// Returns the hit way, or `None` on a miss. If the hit line was spilled
    /// in from a peer the `spilled_line_hits` statistic is bumped and the
    /// flag cleared (the line now belongs to the local working set).
    pub fn access(&mut self, line: LineAddr) -> Option<WayIdx> {
        let set = self.geometry.set_of(line);
        let row = self.row(set);
        let raw = line.raw();
        match find_way(&self.tags[row.clone()], raw) {
            Some(w) => {
                let way = WayIdx(w as u16);
                let rw = &mut self.recency[set.index()];
                *rw = crate::recency::touch_mru_word(*rw, self.geometry.ways(), way);
                self.stats.hits += 1;
                if let Some(ss) = &mut self.set_stats {
                    ss[set.index()].hits += 1;
                }
                let m = &mut self.meta[row.start + w];
                if *m & 0b100 != 0 {
                    self.stats.spilled_line_hits += 1;
                    // The local core reuses the line: it now belongs to the
                    // local working set, not the shared/spilled region.
                    *m &= !0b100;
                }
                Some(way)
            }
            None => {
                self.stats.misses += 1;
                if let Some(ss) = &mut self.set_stats {
                    ss[set.index()].misses += 1;
                }
                None
            }
        }
    }

    /// MESI state of a resident line.
    pub fn state_of(&self, line: LineAddr) -> Option<MesiState> {
        self.probe(line)
            .and_then(|(s, w)| self.set(s).line(w))
            .map(|l| l.state)
    }

    /// Rewrites the MESI state of a resident line. Returns `false` if the
    /// line is not present.
    pub fn set_state(&mut self, line: LineAddr, state: MesiState) -> bool {
        if let Some((s, w)) = self.probe(line) {
            let i = s.index() * self.geometry.ways() as usize + w.index();
            self.meta[i] = encode_meta(state, self.meta[i] & 0b100 != 0);
            return true;
        }
        false
    }

    /// Fills `line` into `(set, way)` at recency position `pos`, returning
    /// the evicted occupant, if the way held a valid line.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `line` does not map to `set`.
    pub fn fill(
        &mut self,
        set: SetIdx,
        way: WayIdx,
        line: CacheLine,
        pos: InsertPos,
        kind: FillKind,
    ) -> Option<CacheLine> {
        debug_assert_eq!(
            self.geometry.set_of(line.addr),
            set,
            "line {:?} does not map to {set}",
            line.addr
        );
        match kind {
            FillKind::Demand => self.stats.demand_fills += 1,
            FillKind::Spill => self.stats.spill_fills += 1,
            FillKind::Prefetch => self.stats.prefetch_fills += 1,
        }
        let evicted = self.set_mut(set).fill(way, line, pos);
        if evicted.is_some() {
            self.stats.evictions += 1;
        }
        evicted
    }

    /// [`fill`](SetAssocCache::fill), additionally reporting the fill (and
    /// any displacement) to `probe` on behalf of `owner` — the core whose
    /// private cache this is.
    ///
    /// With [`NullProbe`](crate::NullProbe) this monomorphizes to exactly
    /// [`fill`](SetAssocCache::fill): the event construction is gated on
    /// [`ObsProbe::ACTIVE`] and compiles away.
    #[allow(clippy::too_many_arguments)] // fill()'s five operands + the (owner, probe) observation pair
    pub fn fill_probed<P: ObsProbe>(
        &mut self,
        owner: CoreId,
        set: SetIdx,
        way: WayIdx,
        line: CacheLine,
        pos: InsertPos,
        kind: FillKind,
        probe: &mut P,
    ) -> Option<CacheLine> {
        let evicted = self.fill(set, way, line, pos, kind);
        if P::ACTIVE {
            probe.record(ObsEvent::Fill {
                core: owner,
                set,
                kind,
            });
            if let Some(ref old) = evicted {
                probe.record(ObsEvent::Eviction {
                    core: owner,
                    set,
                    dirty: old.state.is_dirty(),
                });
            }
        }
        evicted
    }

    /// Invalidates a resident line, returning it.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<CacheLine> {
        let (set, way) = self.probe(line)?;
        self.set_mut(set).invalidate_way(way)
    }

    /// Total valid lines in the cache (O(lines); for tests and assertions).
    pub fn valid_lines(&self) -> u64 {
        self.tags.iter().filter(|&&t| t != TAG_INVALID).count() as u64
    }

    /// The line stored at `(set, way)`, if valid — a direct arena read.
    ///
    /// # Panics
    ///
    /// Panics if `set` or `way` is out of range.
    #[inline]
    pub fn line_at(&self, set: SetIdx, way: WayIdx) -> Option<CacheLine> {
        let i = set.index() * self.geometry.ways() as usize + way.index();
        decode_line(self.tags[i], self.meta[i])
    }

    /// Serialises the full cache state — geometry fingerprint, tag/meta/
    /// recency arenas, stats, optional per-set stats — into `w`.
    ///
    /// Restored by [`load_state`](SetAssocCache::load_state) on a cache of
    /// identical geometry.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u32(self.geometry.sets());
        w.put_u16(self.geometry.ways());
        w.put_u32(self.geometry.line_bytes());
        w.put_u64_slice(&self.tags);
        w.put_bytes(&self.meta);
        w.put_u64_slice(&self.recency);
        let s = &self.stats;
        for v in [
            s.hits,
            s.misses,
            s.demand_fills,
            s.spill_fills,
            s.prefetch_fills,
            s.evictions,
            s.spilled_line_hits,
        ] {
            w.put_u64(v);
        }
        match &self.set_stats {
            None => w.put_bool(false),
            Some(ss) => {
                w.put_bool(true);
                w.put_u64(ss.len() as u64);
                for st in ss {
                    w.put_u64(st.hits);
                    w.put_u64(st.misses);
                }
            }
        }
    }

    /// Restores state captured by [`save_state`](SetAssocCache::save_state).
    ///
    /// Fails with [`SnapError::Mismatch`] if the snapshot was taken from a
    /// cache of different geometry, and with [`SnapError::Corrupt`] if the
    /// arenas violate structural invariants (tags mapping to the wrong set,
    /// undecodable MESI bits, non-permutation recency words) — corruption
    /// is rejected up front rather than surfacing as a panic mid-run.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let (sets, ways, line_bytes) = (r.get_u32()?, r.get_u16()?, r.get_u32()?);
        let g = self.geometry;
        if (sets, ways, line_bytes) != (g.sets(), g.ways(), g.line_bytes()) {
            return Err(SnapError::Mismatch(format!(
                "cache geometry: snapshot {sets}x{ways}x{line_bytes}B, \
                 live {}x{}x{}B",
                g.sets(),
                g.ways(),
                g.line_bytes()
            )));
        }
        let tags = r.get_u64_slice()?;
        let meta = r.get_bytes()?;
        let recency = r.get_u64_slice()?;
        if tags.len() != self.tags.len()
            || meta.len() != self.meta.len()
            || recency.len() != self.recency.len()
        {
            return Err(SnapError::Corrupt(format!(
                "cache arena sizes {}/{}/{} do not match geometry ({} lines, {} sets)",
                tags.len(),
                meta.len(),
                recency.len(),
                g.lines(),
                g.sets()
            )));
        }
        let ways_us = ways as usize;
        for (i, (&tag, &m)) in tags.iter().zip(meta.iter()).enumerate() {
            if tag == TAG_INVALID {
                continue;
            }
            let set = SetIdx((i / ways_us) as u32);
            if g.set_of(LineAddr::new(tag)) != set {
                return Err(SnapError::Corrupt(format!(
                    "tag {tag:#x} stored in set {set} but maps to {}",
                    g.set_of(LineAddr::new(tag))
                )));
            }
            if decode_line(tag, m).is_none() || m & !0b111 != 0 {
                return Err(SnapError::Corrupt(format!(
                    "undecodable meta byte {m:#04x} for valid tag {tag:#x}"
                )));
            }
        }
        for (s, &word) in recency.iter().enumerate() {
            let mut seen = 0u32;
            for w_i in 0..ways_us {
                let nibble = ((word >> (4 * w_i)) & 0xF) as usize;
                if nibble >= ways_us || seen & (1 << nibble) != 0 {
                    return Err(SnapError::Corrupt(format!(
                        "recency word {word:#x} of set {s} is not a permutation of 0..{ways}"
                    )));
                }
                seen |= 1 << nibble;
            }
        }
        self.tags.copy_from_slice(&tags);
        self.meta.copy_from_slice(meta);
        self.recency.copy_from_slice(&recency);
        let mut st = [0u64; 7];
        for v in &mut st {
            *v = r.get_u64()?;
        }
        self.stats = CacheStats {
            hits: st[0],
            misses: st[1],
            demand_fills: st[2],
            spill_fills: st[3],
            prefetch_fills: st[4],
            evictions: st[5],
            spilled_line_hits: st[6],
        };
        if r.get_bool()? {
            let n = r.get_u64()? as usize;
            if n != g.sets() as usize {
                return Err(SnapError::Corrupt(format!(
                    "per-set stats length {n} for {} sets",
                    g.sets()
                )));
            }
            let mut ss = Vec::with_capacity(n);
            for _ in 0..n {
                ss.push(SetStats {
                    hits: r.get_u64()?,
                    misses: r.get_u64()?,
                });
            }
            self.set_stats = Some(ss);
        } else {
            self.set_stats = None;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SetAssocCache {
        // 4 sets x 2 ways x 32B lines.
        SetAssocCache::new(CacheGeometry::new(4, 2, 32).unwrap())
    }

    fn fill_demand(c: &mut SetAssocCache, line: u64) -> Option<CacheLine> {
        let la = LineAddr::new(line);
        let set = c.geometry().set_of(la);
        let v = c.set(set).default_victim();
        c.fill(
            set,
            v,
            CacheLine::demand(la, MesiState::Exclusive),
            InsertPos::Mru,
            FillKind::Demand,
        )
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache();
        assert!(c.access(LineAddr::new(1)).is_none());
        fill_demand(&mut c, 1);
        assert!(c.access(LineAddr::new(1)).is_some());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().demand_fills, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small_cache();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        fill_demand(&mut c, 0);
        fill_demand(&mut c, 4);
        let evicted = fill_demand(&mut c, 8).expect("set is full, must evict");
        assert_eq!(evicted.addr, LineAddr::new(0));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.probe(LineAddr::new(0)).is_none());
        assert!(c.probe(LineAddr::new(4)).is_some());
        assert!(c.probe(LineAddr::new(8)).is_some());
    }

    #[test]
    fn probe_does_not_touch() {
        let mut c = small_cache();
        fill_demand(&mut c, 0);
        fill_demand(&mut c, 4);
        // Probing line 0 must not promote it: filling a third line still
        // evicts line 0 (the LRU).
        assert!(c.probe(LineAddr::new(0)).is_some());
        let evicted = fill_demand(&mut c, 8).unwrap();
        assert_eq!(evicted.addr, LineAddr::new(0));
        assert_eq!(c.stats().hits, 0, "probe must not count as a hit");
    }

    #[test]
    fn spilled_hit_statistic_and_flag_clearing() {
        let mut c = small_cache();
        let la = LineAddr::new(2);
        let set = c.geometry().set_of(la);
        let v = c.set(set).default_victim();
        c.fill(
            set,
            v,
            CacheLine::spilled(la, MesiState::Modified),
            InsertPos::Mru,
            FillKind::Spill,
        );
        assert_eq!(c.stats().spill_fills, 1);
        c.access(la);
        assert_eq!(c.stats().spilled_line_hits, 1);
        // The flag clears on local reuse: a second hit is an ordinary hit.
        c.access(la);
        assert_eq!(c.stats().spilled_line_hits, 1);
    }

    #[test]
    fn state_updates() {
        let mut c = small_cache();
        fill_demand(&mut c, 3);
        assert_eq!(c.state_of(LineAddr::new(3)), Some(MesiState::Exclusive));
        assert!(c.set_state(LineAddr::new(3), MesiState::Shared));
        assert_eq!(c.state_of(LineAddr::new(3)), Some(MesiState::Shared));
        assert!(!c.set_state(LineAddr::new(99), MesiState::Shared));
        assert_eq!(c.state_of(LineAddr::new(99)), None);
    }

    #[test]
    fn set_state_preserves_spilled_flag() {
        let mut c = small_cache();
        let la = LineAddr::new(2);
        let set = c.geometry().set_of(la);
        let v = c.set(set).default_victim();
        c.fill(
            set,
            v,
            CacheLine::spilled(la, MesiState::Exclusive),
            InsertPos::Mru,
            FillKind::Spill,
        );
        assert!(c.set_state(la, MesiState::Shared));
        let l = c.line_at(set, v).unwrap();
        assert_eq!(l.state, MesiState::Shared);
        assert!(l.spilled, "state rewrite must not clear the spilled bit");
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache();
        fill_demand(&mut c, 5);
        let gone = c.invalidate(LineAddr::new(5)).unwrap();
        assert_eq!(gone.addr, LineAddr::new(5));
        assert!(c.probe(LineAddr::new(5)).is_none());
        assert_eq!(c.valid_lines(), 0);
        assert!(c.invalidate(LineAddr::new(5)).is_none());
    }

    #[test]
    fn per_set_stats() {
        let mut c = small_cache().with_set_stats();
        c.access(LineAddr::new(0)); // miss in set 0
        fill_demand(&mut c, 0);
        c.access(LineAddr::new(0)); // hit in set 0
        c.access(LineAddr::new(1)); // miss in set 1
        let ss = c.set_stats().unwrap();
        assert_eq!(ss[0].hits, 1);
        assert_eq!(ss[0].misses, 1);
        assert_eq!(ss[1].misses, 1);
        c.reset_stats();
        assert_eq!(c.set_stats().unwrap()[0].accesses(), 0);
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn fill_probed_reports_fill_and_eviction() {
        use crate::obs::{NullProbe, VecProbe};
        use crate::types::CoreId;

        let mut c = small_cache();
        let mut probe = VecProbe::default();
        for line in [0u64, 4, 8] {
            let la = LineAddr::new(line);
            let set = c.geometry().set_of(la);
            let v = c.set(set).default_victim();
            c.fill_probed(
                CoreId(1),
                set,
                v,
                CacheLine::demand(la, MesiState::Modified),
                InsertPos::Mru,
                FillKind::Demand,
                &mut probe,
            );
        }
        let fills = probe
            .events
            .iter()
            .filter(|e| matches!(e, ObsEvent::Fill { .. }))
            .count();
        assert_eq!(fills, 3);
        let evictions: Vec<_> = probe
            .events
            .iter()
            .filter(|e| matches!(e, ObsEvent::Eviction { .. }))
            .collect();
        assert_eq!(evictions.len(), 1);
        assert_eq!(
            *evictions[0],
            ObsEvent::Eviction {
                core: CoreId(1),
                set: SetIdx(0),
                dirty: true
            }
        );

        // The NullProbe path behaves identically to plain fill().
        let mut c2 = small_cache();
        let la = LineAddr::new(12);
        let set = c2.geometry().set_of(la);
        let v = c2.set(set).default_victim();
        let evicted = c2.fill_probed(
            CoreId(0),
            set,
            v,
            CacheLine::demand(la, MesiState::Exclusive),
            InsertPos::Mru,
            FillKind::Demand,
            &mut NullProbe,
        );
        assert!(evicted.is_none());
        assert_eq!(c2.stats().demand_fills, 1);
    }

    #[test]
    fn valid_lines_counts() {
        let mut c = small_cache();
        assert_eq!(c.valid_lines(), 0);
        fill_demand(&mut c, 0);
        fill_demand(&mut c, 1);
        fill_demand(&mut c, 2);
        assert_eq!(c.valid_lines(), 3);
    }

    #[test]
    fn set_mut_round_trips_through_views() {
        let mut c = small_cache();
        fill_demand(&mut c, 0);
        let set = SetIdx(0);
        let way = c.set(set).find(LineAddr::new(0)).unwrap();
        c.set_mut(set).set_state(way, MesiState::Shared);
        assert_eq!(c.state_of(LineAddr::new(0)), Some(MesiState::Shared));
        assert_eq!(c.set(set).valid_count(), 1);
        let gone = c.set_mut(set).invalidate_way(way).unwrap();
        assert_eq!(gone.addr, LineAddr::new(0));
        assert_eq!(c.set(set).valid_count(), 0);
    }
}
