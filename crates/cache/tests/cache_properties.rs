//! Structural properties of the set-associative cache under random
//! operation sequences: no duplicated residents, consistent statistics,
//! recency stacks always permutations.

use cmp_cache::{
    CacheGeometry, CacheLine, FillKind, InsertPos, LineAddr, MesiState, SetAssocCache,
};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Clone, Debug)]
enum Op {
    Access(u64),
    FillIfMissing(u64, u8), // position selector
    Invalidate(u64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64).prop_map(Op::Access),
        ((0u64..64), 0u8..4).prop_map(|(l, p)| Op::FillIfMissing(l, p)),
        (0u64..64).prop_map(Op::Invalidate),
    ]
}

fn check_no_duplicates(cache: &SetAssocCache) {
    let mut seen = HashSet::new();
    for s in 0..cache.geometry().sets() {
        for (_, line) in cache.set(cmp_cache::SetIdx(s)).iter() {
            assert!(seen.insert(line.addr), "line {:?} stored twice", line.addr);
            assert_eq!(
                cache.geometry().set_of(line.addr),
                cmp_cache::SetIdx(s),
                "line stored in the wrong set"
            );
        }
    }
    assert_eq!(seen.len() as u64, cache.valid_lines());
}

proptest! {
    #[test]
    fn random_ops_never_corrupt_the_cache(
        ops in prop::collection::vec(op(), 0..400),
    ) {
        let mut cache = SetAssocCache::new(CacheGeometry::new(4, 2, 32).unwrap());
        let mut hits = 0u64;
        let mut misses = 0u64;
        for o in ops {
            match o {
                Op::Access(l) => {
                    if cache.access(LineAddr::new(l)).is_some() {
                        hits += 1;
                    } else {
                        misses += 1;
                    }
                }
                Op::FillIfMissing(l, p) => {
                    let la = LineAddr::new(l);
                    if cache.probe(la).is_none() {
                        let set = cache.geometry().set_of(la);
                        let way = cache.set(set).default_victim();
                        let pos = match p {
                            0 => InsertPos::Mru,
                            1 => InsertPos::Lru,
                            2 => InsertPos::LruMinus1,
                            _ => InsertPos::Depth(1),
                        };
                        cache.fill(
                            set,
                            way,
                            CacheLine::demand(la, MesiState::Exclusive),
                            pos,
                            FillKind::Demand,
                        );
                    }
                }
                Op::Invalidate(l) => {
                    cache.invalidate(LineAddr::new(l));
                }
            }
            check_no_duplicates(&cache);
        }
        prop_assert_eq!(cache.stats().hits, hits);
        prop_assert_eq!(cache.stats().misses, misses);
        // A 4-set, 2-way cache never holds more than 8 lines.
        prop_assert!(cache.valid_lines() <= 8);
    }

    #[test]
    fn access_after_fill_always_hits(lines in prop::collection::hash_set(0u64..1000, 1..32)) {
        let mut cache = SetAssocCache::new(CacheGeometry::new(64, 8, 32).unwrap());
        // 64*8 = 512 ways: 32 distinct lines always fit.
        for &l in &lines {
            let la = LineAddr::new(l);
            let set = cache.geometry().set_of(la);
            let way = cache.set(set).default_victim();
            cache.fill(
                set,
                way,
                CacheLine::demand(la, MesiState::Exclusive),
                InsertPos::Mru,
                FillKind::Demand,
            );
        }
        for &l in &lines {
            prop_assert!(cache.access(LineAddr::new(l)).is_some());
        }
    }
}
