//! Shared helpers for the cross-crate integration tests.
//!
//! The real content of this package lives in `tests/` (one file per
//! concern: system invariants, policy behaviour under simulation,
//! metric semantics, determinism). The [`diff`] module is the
//! oracle-vs-engine differential harness, shared between the fuzzing
//! tests and `trace_tool repro`.

pub mod diff;

use ascc::{ArcConfig, AsccConfig, AvgccConfig, RdcbConfig, TinyLfuConfig};
use cmp_cache::{CacheGeometry, LlcPolicy, PrivateBaseline};
use cmp_sim::SystemConfig;
use spill_baselines::{CcPolicy, DsrConfig, DsrDipPolicy, EccConfig};

/// A downscaled Table 2 system: same shape, 1/16 the capacity, so
/// integration tests run in milliseconds while exercising the same code
/// paths (64 kB 8-way L2 = 256 sets, 2 kB L1).
pub fn small_config(cores: usize) -> SystemConfig {
    let mut cfg = SystemConfig::table2(cores);
    cfg.l1 = CacheGeometry::from_capacity(2 << 10, 4, 32).expect("valid L1");
    cfg.l2 = CacheGeometry::from_capacity(64 << 10, 8, 32).expect("valid L2");
    cfg
}

/// Every policy the simulator must be able to drive, built for `cfg`.
pub fn all_policies(cfg: &SystemConfig) -> Vec<Box<dyn LlcPolicy>> {
    let (cores, sets, ways) = (cfg.cores, cfg.l2.sets(), cfg.l2.ways());
    vec![
        Box::new(PrivateBaseline::new()),
        Box::new(CcPolicy::new(cores, 0xCC)),
        Box::new(DsrConfig::dsr(cores, sets).build()),
        Box::new(DsrConfig::dsr_3s(cores, sets).build()),
        Box::new(DsrDipPolicy::new(cores, sets)),
        Box::new(EccConfig::ecc(cores, ways).build()),
        Box::new(AsccConfig::ascc(cores, sets, ways).build()),
        Box::new(AsccConfig::ascc_2s(cores, sets, ways).build()),
        Box::new(AsccConfig::gms_sabip(cores, sets, ways).build()),
        Box::new(AvgccConfig::avgcc(cores, sets, ways).build()),
        Box::new(AvgccConfig::qos_avgcc(cores, sets, ways).build()),
        Box::new(ArcConfig::new(cores, sets, ways).build()),
        Box::new(TinyLfuConfig::for_geometry(cores, sets, ways).build()),
        Box::new(RdcbConfig::new(cores, sets, ways).build()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_shape() {
        let cfg = small_config(2);
        assert_eq!(cfg.l2.sets(), 256);
        assert_eq!(cfg.l2.ways(), 8);
    }

    #[test]
    fn policy_zoo_builds() {
        assert_eq!(all_policies(&small_config(4)).len(), 14);
    }
}
