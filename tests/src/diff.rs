//! The differential harness: runs the optimized engine (`cmp_sim`) and the
//! spec-literal oracle (`cmp_oracle`) in lockstep on generated multi-core
//! access sequences and compares **full architectural state** — every tag,
//! MESI state, recency order, spilled flag, SSL counter, insertion-policy
//! flag, AVGCC `D`/`A`/`B`, QoS ratio and event counter — at every
//! checkpoint.
//!
//! A [`DiffCase`] is a plain data description of one run (system shape,
//! policy configuration, interleaved op sequence) with a stable text form
//! ([`dump_case`]/[`parse_case`]) so failing cases can be committed, shipped
//! by CI, and replayed with `trace_tool repro <file>`. [`shrink_case`]
//! minimizes a failing case before it is reported.

use cmp_cache::{CoreId, MesiState, SetIdx, WayIdx};
use cmp_coherence::FabricKind;
use cmp_oracle::{
    diff_snapshots, CacheSnap, CoreSnap, LineSnap, OracleArcConfig, OracleAsccConfig,
    OracleAvgccConfig, OracleCapacity, OracleConfig, OracleCpu, OraclePolicyConfig,
    OracleRdcbConfig, OracleSelection, OracleSystem, OracleTinyLfuConfig, PolicySnap, SetSnap,
    SysSnap,
};
use cmp_sim::{CmpSystem, SystemConfig};
use cmp_trace::{Access, AccessStream, CoreWorkload, CpuModel};

/// One scripted memory operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DiffOp {
    /// Issuing core.
    pub core: u8,
    /// Line number (byte address = `line << 5`).
    pub line: u32,
    /// Store (true) or load.
    pub store: bool,
}

/// Which policy the case runs, with the knobs the fuzzer varies.
#[derive(Clone, PartialEq, Debug)]
pub enum DiffPolicy {
    /// ASCC and its ablation variants (`variant % 6` selects: full ASCC,
    /// 2-state, LRS, LMS+BIP, GMS+SABIP, ASCC with 4 counters).
    Ascc {
        /// Variant selector.
        variant: u8,
        /// §3.2 swap enabled.
        swap: bool,
        /// RNG seed shared by both engines.
        seed: u64,
    },
    /// AVGCC / QoS-AVGCC.
    Avgcc {
        /// QoS extension enabled.
        qos: bool,
        /// Accesses per granularity epoch (kept tiny so epochs fire).
        epoch_accesses: u64,
        /// Cycles per QoS ratio recomputation.
        qos_epoch_cycles: u64,
        /// Counter cap, if any.
        max_counters: Option<u32>,
        /// §3.2 swap enabled.
        swap: bool,
        /// RNG seed shared by both engines.
        seed: u64,
    },
    /// Per-set ARC (RNG-free, never spills).
    Arc,
    /// TinyLFU admission filtering over the private-LRU baseline.
    TinyLfu {
        /// Sketch counters per row (power of two, >= 64).
        width: u32,
        /// Sketch rows (1..=8).
        depth: u32,
        /// Observations per sample window (kept tiny so resets fire).
        sample_period: u64,
    },
    /// Reuse-distance copy-back over the paper's default ASCC.
    Rdcb {
        /// Predictor rows per core (power of two).
        entries: u32,
        /// Copy-back reuse-distance threshold.
        threshold: u64,
        /// §3.2 swap enabled.
        swap: bool,
        /// RNG seed shared by both engines.
        seed: u64,
    },
}

/// A complete differential test case.
#[derive(Clone, PartialEq, Debug)]
pub struct DiffCase {
    /// Core count (2..=4).
    pub cores: u8,
    /// log2 of L2 sets (L1 is fixed at 2 sets x 2 ways).
    pub l2_sets_log2: u8,
    /// L2 associativity.
    pub l2_ways: u16,
    /// Migrate (true) or replicate remote read hits.
    pub migrate: bool,
    /// Memory fraction denominator: `mem_fraction = 1 / mem_q`.
    pub mem_q: u8,
    /// Compare full state every this many ops (always compared at the end).
    pub check_every: u32,
    /// Coherence fabric the engine runs on (the oracle mirrors it).
    pub fabric: FabricKind,
    /// The policy under test.
    pub policy: DiffPolicy,
    /// The interleaved access script.
    pub ops: Vec<DiffOp>,
}

/// Replays a fixed access list; the differential harness steps the core
/// explicitly, so the script is consumed exactly once in order.
struct Script {
    ops: Vec<Access>,
    i: usize,
}

impl AccessStream for Script {
    fn next_access(&mut self) -> Access {
        if self.ops.is_empty() {
            return Access::load(cmp_cache::Addr::new(0), 0);
        }
        let a = self.ops[self.i % self.ops.len()];
        self.i += 1;
        a
    }
}

fn l2_sets(case: &DiffCase) -> u32 {
    1u32 << case.l2_sets_log2
}

/// Builds the optimized engine for a case. Public so characterization
/// tests can script exact access sequences and then inspect policy state.
pub fn build_real(case: &DiffCase) -> CmpSystem {
    let cores = case.cores as usize;
    let mut cfg = SystemConfig::table2(cores);
    cfg.l1 = cmp_cache::CacheGeometry::new(2, 2, 32).expect("valid L1");
    cfg.l2 = cmp_cache::CacheGeometry::new(l2_sets(case), case.l2_ways, 32).expect("valid L2");
    cfg.read_policy = if case.migrate {
        cmp_coherence::ReadPolicy::Migrate
    } else {
        cmp_coherence::ReadPolicy::Replicate
    };
    cfg.fabric = case.fabric;

    let policy: Box<dyn cmp_cache::LlcPolicy> = match &case.policy {
        DiffPolicy::Ascc {
            variant,
            swap,
            seed,
        } => {
            let (sets, ways) = (l2_sets(case), case.l2_ways);
            let mut c = match variant % 6 {
                0 => ascc::AsccConfig::ascc(cores, sets, ways),
                1 => ascc::AsccConfig::ascc_2s(cores, sets, ways),
                2 => ascc::AsccConfig::lrs(cores, sets, ways),
                3 => ascc::AsccConfig::lms_bip(cores, sets, ways),
                4 => ascc::AsccConfig::gms_sabip(cores, sets, ways),
                _ => ascc::AsccConfig::ascc(cores, sets, ways).with_counters(4),
            };
            c.swap = *swap;
            c.seed = *seed;
            Box::new(c.build())
        }
        DiffPolicy::Avgcc {
            qos,
            epoch_accesses,
            qos_epoch_cycles,
            max_counters,
            swap,
            seed,
        } => {
            let mut c = if *qos {
                ascc::AvgccConfig::qos_avgcc(cores, l2_sets(case), case.l2_ways)
            } else {
                ascc::AvgccConfig::avgcc(cores, l2_sets(case), case.l2_ways)
            };
            c.epoch_accesses = *epoch_accesses;
            c.qos_epoch_cycles = *qos_epoch_cycles;
            c.max_counters = *max_counters;
            c.swap = *swap;
            c.seed = *seed;
            Box::new(c.build())
        }
        DiffPolicy::Arc => {
            Box::new(ascc::ArcConfig::new(cores, l2_sets(case), case.l2_ways).build())
        }
        DiffPolicy::TinyLfu {
            width,
            depth,
            sample_period,
        } => Box::new(
            ascc::TinyLfuConfig {
                width: *width,
                depth: *depth,
                sample_period: *sample_period,
            }
            .build(),
        ),
        DiffPolicy::Rdcb {
            entries,
            threshold,
            swap,
            seed,
        } => {
            let mut inner = ascc::AsccConfig::ascc(cores, l2_sets(case), case.l2_ways);
            inner.swap = *swap;
            inner.seed = *seed;
            Box::new(
                ascc::RdcbConfig {
                    inner,
                    entries: *entries,
                    threshold: *threshold,
                }
                .build(),
            )
        }
    };

    let workloads = (0..case.cores)
        .map(|c| CoreWorkload {
            label: format!("script{c}"),
            cpu: CpuModel {
                mem_fraction: 1.0 / case.mem_q as f64,
                base_cpi: 1.0,
                overlap: 1.0,
                store_fraction: 0.0,
            },
            stream: Box::new(Script {
                ops: case
                    .ops
                    .iter()
                    .filter(|o| o.core == c)
                    .map(|o| {
                        let addr = cmp_cache::Addr::new((o.line as u64) << 5);
                        if o.store {
                            Access::store(addr, 0)
                        } else {
                            Access::load(addr, 0)
                        }
                    })
                    .collect(),
                i: 0,
            }) as Box<dyn AccessStream>,
        })
        .collect();

    CmpSystem::new(cfg, policy, workloads)
}

fn build_oracle(case: &DiffCase) -> OracleSystem {
    let cores = case.cores as usize;
    let (sets, ways) = (l2_sets(case), case.l2_ways);
    let policy = match &case.policy {
        DiffPolicy::Ascc {
            variant,
            swap,
            seed,
        } => {
            // Mirrors the AsccConfig constructors variant for variant.
            let (spc, selection, capacity, two_state) = match variant % 6 {
                0 => (1, OracleSelection::MinSsl, OracleCapacity::Sabip, false),
                1 => (1, OracleSelection::MinSsl, OracleCapacity::Sabip, true),
                2 => (1, OracleSelection::Random, OracleCapacity::None, false),
                3 => (1, OracleSelection::MinSsl, OracleCapacity::Bip, false),
                4 => (sets, OracleSelection::MinSsl, OracleCapacity::Sabip, false),
                _ => (
                    sets / 4,
                    OracleSelection::MinSsl,
                    OracleCapacity::Sabip,
                    false,
                ),
            };
            OraclePolicyConfig::Ascc(OracleAsccConfig {
                cores,
                sets,
                ways,
                sets_per_counter: spc,
                selection,
                capacity,
                two_state,
                swap: *swap,
                epsilon: 1.0 / 32.0,
                seed: *seed,
            })
        }
        DiffPolicy::Avgcc {
            qos,
            epoch_accesses,
            qos_epoch_cycles,
            max_counters,
            swap,
            seed,
        } => OraclePolicyConfig::Avgcc(OracleAvgccConfig {
            cores,
            sets,
            ways,
            epoch_accesses: *epoch_accesses,
            qos: *qos,
            qos_epoch_cycles: *qos_epoch_cycles,
            max_counters: *max_counters,
            epsilon: 1.0 / 32.0,
            swap: *swap,
            seed: *seed,
        }),
        DiffPolicy::Arc => OraclePolicyConfig::Arc(OracleArcConfig { cores, sets, ways }),
        DiffPolicy::TinyLfu {
            width,
            depth,
            sample_period,
        } => OraclePolicyConfig::TinyLfu(OracleTinyLfuConfig {
            width: *width,
            depth: *depth,
            sample_period: *sample_period,
        }),
        DiffPolicy::Rdcb {
            entries,
            threshold,
            swap,
            seed,
        } => OraclePolicyConfig::Rdcb(OracleRdcbConfig {
            // Mirrors `AsccConfig::ascc` (the paper's default tuning).
            ascc: OracleAsccConfig {
                cores,
                sets,
                ways,
                sets_per_counter: 1,
                selection: OracleSelection::MinSsl,
                capacity: OracleCapacity::Sabip,
                two_state: false,
                swap: *swap,
                epsilon: 1.0 / 32.0,
                seed: *seed,
            },
            entries: *entries,
            threshold: *threshold,
        }),
    };
    OracleSystem::new(
        OracleConfig {
            cores,
            l1_sets: 2,
            l1_ways: 2,
            l2_sets: sets,
            l2_ways: ways,
            offset_bits: 5,
            lat_l2_local: 9,
            lat_l2_remote: 25,
            lat_mem: 460,
            migrate: case.migrate,
            directory: case.fabric == FabricKind::Directory,
            cpu: vec![
                OracleCpu {
                    mem_fraction: 1.0 / case.mem_q as f64,
                    base_cpi: 1.0,
                    overlap: 1.0,
                };
                cores
            ],
        },
        policy,
    )
}

fn mesi_code(s: MesiState) -> u8 {
    match s {
        MesiState::Modified => 0,
        MesiState::Exclusive => 1,
        MesiState::Shared => 2,
    }
}

fn snap_cache(cache: &cmp_cache::SetAssocCache) -> CacheSnap {
    let geom = cache.geometry();
    let (sets, ways) = (geom.sets(), geom.ways());
    let stats = cache.stats();
    CacheSnap {
        sets: (0..sets)
            .map(|s| {
                let cs = cache.set(SetIdx(s));
                SetSnap {
                    lines: (0..ways)
                        .map(|w| {
                            cs.line(WayIdx(w)).map(|l| LineSnap {
                                addr: l.addr.raw(),
                                state: mesi_code(l.state),
                                spilled: l.spilled,
                            })
                        })
                        .collect(),
                    order: cs.recency().order().map(|w| w.0).collect(),
                }
            })
            .collect(),
        hits: stats.hits,
        misses: stats.misses,
        demand_fills: stats.demand_fills,
        spill_fills: stats.spill_fills,
        evictions: stats.evictions,
        spilled_line_hits: stats.spilled_line_hits,
    }
}

/// Full architectural-state dump of the optimized engine, shaped exactly
/// like the oracle's [`SysSnap`].
pub fn snapshot_real(sys: &CmpSystem, case: &DiffCase) -> SysSnap {
    let res = sys.lifetime_result();
    let bus = sys.fabric().stats();
    let cores = case.cores as usize;
    let policy = match &case.policy {
        DiffPolicy::Ascc { .. } => {
            let p = sys
                .policy()
                .as_any()
                .downcast_ref::<ascc::AsccPolicy>()
                .expect("ASCC case runs an AsccPolicy");
            PolicySnap::Ascc {
                ssl: (0..cores).map(|c| p.ssl_values(CoreId(c as u8))).collect(),
                bip: (0..cores).map(|c| p.bip_flags(CoreId(c as u8))).collect(),
                activations: p.capacity_activations(),
            }
        }
        DiffPolicy::Avgcc { .. } => {
            let p = sys
                .policy()
                .as_any()
                .downcast_ref::<ascc::AvgccPolicy>()
                .expect("AVGCC case runs an AvgccPolicy");
            PolicySnap::Avgcc {
                d: (0..cores)
                    .map(|c| p.granularity_log2(CoreId(c as u8)))
                    .collect(),
                ssl: (0..cores).map(|c| p.ssl_values(CoreId(c as u8))).collect(),
                bip: (0..cores).map(|c| p.bip_flags(CoreId(c as u8))).collect(),
                ab: (0..cores).map(|c| p.ab_counters(CoreId(c as u8))).collect(),
                ratio_fixed: (0..cores)
                    .map(|c| (p.qos_ratio(CoreId(c as u8)) * 8.0).round() as u16)
                    .collect(),
                granularity_changes: p.granularity_changes(),
            }
        }
        DiffPolicy::Arc => {
            let p = sys
                .policy()
                .as_any()
                .downcast_ref::<ascc::ArcPolicy>()
                .expect("ARC case runs an ArcPolicy");
            let sets = 1usize << case.l2_sets_log2;
            let per_set = |f: &dyn Fn(CoreId, SetIdx) -> u16| -> Vec<Vec<u16>> {
                (0..cores)
                    .map(|c| {
                        (0..sets)
                            .map(|s| f(CoreId(c as u8), SetIdx(s as u32)))
                            .collect()
                    })
                    .collect()
            };
            let ghosts: Vec<Vec<(Vec<u64>, Vec<u64>)>> = (0..cores)
                .map(|c| {
                    (0..sets)
                        .map(|s| p.ghosts(CoreId(c as u8), SetIdx(s as u32)))
                        .collect()
                })
                .collect();
            PolicySnap::Arc {
                p: per_set(&|c, s| p.p_of(c, s)),
                t2: per_set(&|c, s| p.t2_mask(c, s)),
                b1: ghosts
                    .iter()
                    .map(|core| core.iter().map(|(b1, _)| b1.clone()).collect())
                    .collect(),
                b2: ghosts
                    .iter()
                    .map(|core| core.iter().map(|(_, b2)| b2.clone()).collect())
                    .collect(),
                ghost_hits: p.ghost_hits(),
            }
        }
        DiffPolicy::TinyLfu { .. } => {
            let p = sys
                .policy()
                .as_any()
                .downcast_ref::<ascc::TinyLfuPolicy>()
                .expect("TinyLFU case runs a TinyLfuPolicy");
            PolicySnap::TinyLfu {
                sketch: p.sketch_counters(),
                doorkeeper: p.doorkeeper_bits(),
                samples: p.samples(),
                resets: p.resets(),
                admissions: p.admissions(),
                rejections: p.rejections(),
            }
        }
        DiffPolicy::Rdcb { .. } => {
            let p = sys
                .policy()
                .as_any()
                .downcast_ref::<ascc::RdcbPolicy>()
                .expect("RD-CB case runs an RdcbPolicy");
            let inner = p.inner();
            PolicySnap::Rdcb {
                ssl: (0..cores)
                    .map(|c| inner.ssl_values(CoreId(c as u8)))
                    .collect(),
                bip: (0..cores)
                    .map(|c| inner.bip_flags(CoreId(c as u8)))
                    .collect(),
                activations: inner.capacity_activations(),
                predictor: (0..cores)
                    .map(|c| p.predictor_rows(CoreId(c as u8)))
                    .collect(),
                clock: (0..cores).map(|c| p.clock_of(CoreId(c as u8))).collect(),
                copy_backs: p.copy_backs(),
            }
        }
    };
    SysSnap {
        l1: sys.l1s().iter().map(snap_cache).collect(),
        l2: sys.l2s().iter().map(snap_cache).collect(),
        cores: res
            .cores
            .iter()
            .map(|c| CoreSnap {
                instrs: c.instrs,
                cycles: c.cycles,
                l1_accesses: c.l1_accesses,
                l1_hits: c.l1_hits,
                l2_accesses: c.l2_accesses,
                l2_local_hits: c.l2_local_hits,
                l2_remote_hits: c.l2_remote_hits,
                l2_mem: c.l2_mem,
                offchip_fetches: c.offchip_fetches,
                writebacks: c.writebacks,
            })
            .collect(),
        spills: res.spills,
        swaps: res.swaps,
        spill_hits: res.spill_hits,
        bus: (bus.snoops, bus.transfers, bus.invalidations, bus.probes),
        policy,
    }
}

/// Runs the always-on invariant sweep on the optimized engine's state.
fn check_real_invariants(sys: &CmpSystem, case: &DiffCase) -> Vec<String> {
    let mut problems: Vec<String> = cmp_coherence::check_mesi(sys.l2s())
        .iter()
        .map(|v| v.to_string())
        .collect();
    problems.extend(
        cmp_coherence::check_recency(sys.l1s())
            .iter()
            .chain(cmp_coherence::check_recency(sys.l2s()).iter())
            .map(|v| v.to_string()),
    );
    // Replication hands out replicas while the supplier keeps its spilled
    // copy, so spilled-implies-last-copy only holds under migration.
    if case.migrate {
        problems.extend(
            cmp_coherence::check_spilled_last_copies(sys.l2s())
                .iter()
                .map(|v| v.to_string()),
        );
    }
    problems.extend(sys.policy().check_invariants());
    problems
}

/// Runs both engines in lockstep over the case's script, comparing full
/// state every `check_every` ops and at the end, plus the structural
/// invariant sweep at each checkpoint. `Ok(())` means bit-identical
/// throughout.
pub fn run_case(case: &DiffCase) -> Result<(), String> {
    let mut real = build_real(case);
    let mut oracle = build_oracle(case);
    let check_every = case.check_every.max(1) as usize;
    for (i, op) in case.ops.iter().enumerate() {
        let core = (op.core % case.cores) as usize;
        real.step(core);
        oracle.step(core, (op.line as u64) << 5, op.store);
        if (i + 1) % check_every == 0 || i + 1 == case.ops.len() {
            if let Some(d) = diff_snapshots(&oracle.snapshot(), &snapshot_real(&real, case)) {
                return Err(format!("after op {i} ({op:?}): {d}"));
            }
            let problems = check_real_invariants(&real, case);
            if !problems.is_empty() {
                return Err(format!(
                    "after op {i} ({op:?}): invariants violated: {}",
                    problems.join("; ")
                ));
            }
        }
    }
    Ok(())
}

/// Runs the same case on the broadcast and directory fabrics in lockstep
/// and compares full architectural state at every checkpoint. `probes` is
/// the one counter allowed to differ (fewer tag lookups is the point of
/// the directory) and is required to be no worse; everything else must be
/// bit-identical.
pub fn run_case_cross_fabric(case: &DiffCase) -> Result<(), String> {
    let mut bcast_case = case.clone();
    bcast_case.fabric = FabricKind::Broadcast;
    let mut dir_case = case.clone();
    dir_case.fabric = FabricKind::Directory;
    let mut bcast = build_real(&bcast_case);
    let mut dir = build_real(&dir_case);
    let check_every = case.check_every.max(1) as usize;
    for (i, op) in case.ops.iter().enumerate() {
        let core = (op.core % case.cores) as usize;
        bcast.step(core);
        dir.step(core);
        if (i + 1) % check_every == 0 || i + 1 == case.ops.len() {
            let mut sb = snapshot_real(&bcast, &bcast_case);
            let mut sd = snapshot_real(&dir, &dir_case);
            if sd.bus.3 > sb.bus.3 {
                return Err(format!(
                    "after op {i} ({op:?}): directory probed more than broadcast \
                     ({} > {})",
                    sd.bus.3, sb.bus.3
                ));
            }
            sb.bus.3 = 0;
            sd.bus.3 = 0;
            if let Some(d) = diff_snapshots(&sb, &sd) {
                return Err(format!(
                    "after op {i} ({op:?}): broadcast (reported as oracle) vs \
                     directory (reported as real): {d}"
                ));
            }
        }
    }
    Ok(())
}

/// Replays a case with a snapshot/restore round trip at op `resume_at`:
/// the engine is run to the split point, serialized, rebuilt from scratch,
/// restored, and then continued in lockstep against the *uninterrupted*
/// oracle. `Ok` means the resumed engine is state-identical to a straight
/// run at the restore point and every later checkpoint — the crash-resume
/// invariant, proved against an independent reference implementation.
pub fn run_case_resumed(case: &DiffCase, resume_at: usize) -> Result<(), String> {
    let mut real = build_real(case);
    let mut oracle = build_oracle(case);
    let split = resume_at.min(case.ops.len());
    for op in &case.ops[..split] {
        let core = (op.core % case.cores) as usize;
        real.step(core);
        oracle.step(core, (op.line as u64) << 5, op.store);
    }
    let bytes = real.snapshot();
    let mut real = build_real(case);
    real.restore(&bytes)
        .map_err(|e| format!("restore at op {split}: {e}"))?;
    if let Some(d) = diff_snapshots(&oracle.snapshot(), &snapshot_real(&real, case)) {
        return Err(format!("immediately after restore at op {split}: {d}"));
    }
    let check_every = case.check_every.max(1) as usize;
    for (i, op) in case.ops.iter().enumerate().skip(split) {
        let core = (op.core % case.cores) as usize;
        real.step(core);
        oracle.step(core, (op.line as u64) << 5, op.store);
        if (i + 1) % check_every == 0 || i + 1 == case.ops.len() {
            if let Some(d) = diff_snapshots(&oracle.snapshot(), &snapshot_real(&real, case)) {
                return Err(format!("resumed at {split}, after op {i} ({op:?}): {d}"));
            }
        }
    }
    Ok(())
}

/// Minimizes a failing case: forces per-op comparison, cuts the script to
/// the shortest failing prefix, then greedily removes chunks. The result is
/// guaranteed to still fail.
pub fn shrink_case(case: &DiffCase) -> DiffCase {
    let mut best = case.clone();
    if best.check_every != 1 {
        let mut c = best.clone();
        c.check_every = 1;
        if run_case(&c).is_err() {
            best = c;
        }
    }
    // With per-op comparison, "prefix of length n fails" is monotone in n,
    // so the shortest failing prefix binary-searches.
    if best.check_every == 1 && !best.ops.is_empty() {
        let (mut lo, mut hi) = (1usize, best.ops.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let mut c = best.clone();
            c.ops.truncate(mid);
            if run_case(&c).is_err() {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let mut c = best.clone();
        c.ops.truncate(hi);
        if run_case(&c).is_err() {
            best = c;
        }
    }
    // Greedy delta-debugging pass over the remaining ops.
    let mut chunk = (best.ops.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i + chunk <= best.ops.len() {
            let mut c = best.clone();
            c.ops.drain(i..i + chunk);
            if run_case(&c).is_err() {
                best = c;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    best
}

/// Serializes a case in the stable line-oriented repro format.
pub fn dump_case(case: &DiffCase) -> String {
    let mut s = String::from("# ascc differential repro v1\n");
    s.push_str(&format!("cores {}\n", case.cores));
    s.push_str(&format!("l2sets_log2 {}\n", case.l2_sets_log2));
    s.push_str(&format!("l2ways {}\n", case.l2_ways));
    s.push_str(&format!("migrate {}\n", case.migrate as u8));
    s.push_str(&format!("memq {}\n", case.mem_q));
    s.push_str(&format!("check {}\n", case.check_every));
    s.push_str(&format!("fabric {}\n", case.fabric.label()));
    match &case.policy {
        DiffPolicy::Ascc {
            variant,
            swap,
            seed,
        } => s.push_str(&format!("policy ascc {variant} {} {seed}\n", *swap as u8)),
        DiffPolicy::Avgcc {
            qos,
            epoch_accesses,
            qos_epoch_cycles,
            max_counters,
            swap,
            seed,
        } => s.push_str(&format!(
            "policy avgcc {} {epoch_accesses} {qos_epoch_cycles} {} {} {seed}\n",
            *qos as u8,
            max_counters.map_or("-".to_string(), |m| m.to_string()),
            *swap as u8,
        )),
        DiffPolicy::Arc => s.push_str("policy arc\n"),
        DiffPolicy::TinyLfu {
            width,
            depth,
            sample_period,
        } => s.push_str(&format!("policy tinylfu {width} {depth} {sample_period}\n")),
        DiffPolicy::Rdcb {
            entries,
            threshold,
            swap,
            seed,
        } => s.push_str(&format!(
            "policy rdcb {entries} {threshold} {} {seed}\n",
            *swap as u8
        )),
    }
    for op in &case.ops {
        s.push_str(&format!("op {} {} {}\n", op.core, op.line, op.store as u8));
    }
    s
}

/// Parses the [`dump_case`] format back into a case.
pub fn parse_case(text: &str) -> Result<DiffCase, String> {
    let mut cores = None;
    let mut l2_sets_log2 = None;
    let mut l2_ways = None;
    let mut migrate = None;
    let mut mem_q = None;
    let mut check_every = None;
    let mut fabric = None;
    let mut policy = None;
    let mut ops = Vec::new();
    let want = |f: &mut std::str::SplitWhitespace<'_>, what: &str| -> Result<u64, String> {
        f.next()
            .ok_or_else(|| format!("missing {what}"))?
            .parse::<u64>()
            .map_err(|e| format!("bad {what}: {e}"))
    };
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut f = line.split_whitespace();
        let key = f.next().expect("non-empty line");
        let res: Result<(), String> = (|| {
            match key {
                "cores" => cores = Some(want(&mut f, "cores")? as u8),
                "l2sets_log2" => l2_sets_log2 = Some(want(&mut f, "l2sets_log2")? as u8),
                "l2ways" => l2_ways = Some(want(&mut f, "l2ways")? as u16),
                "migrate" => migrate = Some(want(&mut f, "migrate")? != 0),
                "memq" => mem_q = Some(want(&mut f, "memq")? as u8),
                "check" => check_every = Some(want(&mut f, "check")? as u32),
                "fabric" => {
                    fabric = Some(match f.next() {
                        Some("broadcast") => FabricKind::Broadcast,
                        Some("directory") => FabricKind::Directory,
                        other => return Err(format!("unknown fabric {other:?}")),
                    });
                }
                "policy" => {
                    policy = Some(match f.next() {
                        Some("ascc") => DiffPolicy::Ascc {
                            variant: want(&mut f, "variant")? as u8,
                            swap: want(&mut f, "swap")? != 0,
                            seed: want(&mut f, "seed")?,
                        },
                        Some("avgcc") => {
                            let qos = want(&mut f, "qos")? != 0;
                            let epoch_accesses = want(&mut f, "epoch")?;
                            let qos_epoch_cycles = want(&mut f, "qos cycles")?;
                            let max_counters = match f.next() {
                                Some("-") => None,
                                Some(v) => {
                                    Some(v.parse().map_err(|e| format!("bad max counters: {e}"))?)
                                }
                                None => return Err("missing max counters".to_string()),
                            };
                            DiffPolicy::Avgcc {
                                qos,
                                epoch_accesses,
                                qos_epoch_cycles,
                                max_counters,
                                swap: want(&mut f, "swap")? != 0,
                                seed: want(&mut f, "seed")?,
                            }
                        }
                        Some("arc") => DiffPolicy::Arc,
                        Some("tinylfu") => DiffPolicy::TinyLfu {
                            width: want(&mut f, "width")? as u32,
                            depth: want(&mut f, "depth")? as u32,
                            sample_period: want(&mut f, "sample period")?,
                        },
                        Some("rdcb") => DiffPolicy::Rdcb {
                            entries: want(&mut f, "entries")? as u32,
                            threshold: want(&mut f, "threshold")?,
                            swap: want(&mut f, "swap")? != 0,
                            seed: want(&mut f, "seed")?,
                        },
                        other => {
                            return Err(format!(
                                "unknown policy {other:?} (valid: ascc, avgcc, arc, tinylfu, rdcb)"
                            ))
                        }
                    });
                }
                "op" => ops.push(DiffOp {
                    core: want(&mut f, "op core")? as u8,
                    line: want(&mut f, "op line")? as u32,
                    store: want(&mut f, "op store")? != 0,
                }),
                other => return Err(format!("unknown key {other:?}")),
            }
            Ok(())
        })();
        res.map_err(|e| format!("line {}: {e}", ln + 1))?;
    }
    let case = DiffCase {
        cores: cores.ok_or("missing cores")?,
        l2_sets_log2: l2_sets_log2.ok_or("missing l2sets_log2")?,
        l2_ways: l2_ways.ok_or("missing l2ways")?,
        migrate: migrate.ok_or("missing migrate")?,
        mem_q: mem_q.ok_or("missing memq")?,
        check_every: check_every.ok_or("missing check")?,
        // Absent in v1 case files dumped before the directory existed; both
        // fabrics are bit-identical, so replaying them on the directory is
        // the stronger check.
        fabric: fabric.unwrap_or(FabricKind::Directory),
        policy: policy.ok_or("missing policy")?,
        ops,
    };
    validate_case(&case)?;
    Ok(case)
}

/// Rejects semantically invalid cases (a truncated or hand-edited `.case`
/// file) with a diagnostic instead of letting [`build_real`] panic on an
/// impossible geometry, a zero core count, or a zero memory divisor.
fn validate_case(case: &DiffCase) -> Result<(), String> {
    if case.cores == 0 || case.cores > 8 {
        return Err(format!("cores must be 1..=8, got {}", case.cores));
    }
    if case.l2_sets_log2 > 16 {
        return Err(format!(
            "l2sets_log2 must be <= 16, got {}",
            case.l2_sets_log2
        ));
    }
    if case.l2_ways == 0 || case.l2_ways > cmp_cache::MAX_WAYS {
        return Err(format!(
            "l2ways must be 1..={}, got {}",
            cmp_cache::MAX_WAYS,
            case.l2_ways
        ));
    }
    if case.mem_q == 0 {
        return Err("memq must be >= 1".to_string());
    }
    match &case.policy {
        DiffPolicy::TinyLfu {
            width,
            depth,
            sample_period,
        } => {
            if *width < 64 || !width.is_power_of_two() {
                return Err(format!(
                    "tinylfu width must be a power of two >= 64, got {width}"
                ));
            }
            if *depth == 0 || *depth > 8 {
                return Err(format!("tinylfu depth must be 1..=8, got {depth}"));
            }
            if *sample_period == 0 {
                return Err("tinylfu sample period must be >= 1".to_string());
            }
        }
        DiffPolicy::Rdcb { entries, .. } => {
            if *entries == 0 || !entries.is_power_of_two() {
                return Err(format!(
                    "rdcb entries must be a nonzero power of two, got {entries}"
                ));
            }
        }
        DiffPolicy::Ascc { .. } | DiffPolicy::Avgcc { .. } | DiffPolicy::Arc => {}
    }
    Ok(())
}

/// Replays a dumped case file; `Ok` means both engines still agree.
pub fn repro_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let case = parse_case(&text)?;
    run_case(&case)
}

fn fnv(text: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Writes a (shrunk) failing case to `target/diff-failures/` and returns
/// the path. CI uploads this directory as an artifact on failure.
pub fn dump_failure(case: &DiffCase) -> String {
    let text = dump_case(case);
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("target")
        .join("diff-failures");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("diff-{:016x}.case", fnv(&text)));
    let _ = std::fs::write(&path, &text);
    path.display().to_string()
}

/// Property-test entry point: runs the case and, on divergence, shrinks it,
/// dumps the repro file and panics with a replay command.
///
/// # Panics
///
/// Panics when the engines diverge or an invariant fails.
pub fn assert_case(case: &DiffCase) {
    if let Err(first) = run_case(case) {
        let min = shrink_case(case);
        let err = run_case(&min).err().unwrap_or(first);
        let path = dump_failure(&min);
        panic!(
            "oracle/engine divergence: {err}\n\
             shrunk to {} ops; repro dumped to {path}\n\
             replay with: cargo run -p ascc-bench --bin trace_tool -- repro {path}",
            min.ops.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_case() -> DiffCase {
        DiffCase {
            cores: 2,
            l2_sets_log2: 2,
            l2_ways: 2,
            migrate: true,
            mem_q: 3,
            check_every: 4,
            fabric: FabricKind::Directory,
            policy: DiffPolicy::Ascc {
                variant: 0,
                swap: true,
                seed: 0xA5CC,
            },
            ops: vec![
                DiffOp {
                    core: 0,
                    line: 1,
                    store: false,
                },
                DiffOp {
                    core: 1,
                    line: 1,
                    store: true,
                },
                DiffOp {
                    core: 0,
                    line: 9,
                    store: false,
                },
            ],
        }
    }

    /// A longer mixed-sharing script that exercises fills, evictions,
    /// ghost/sketch updates and clean-victim spills for the frontier
    /// policies (the 3-op sample barely fills one set).
    fn frontier_case(policy: DiffPolicy) -> DiffCase {
        let mut ops = Vec::new();
        for i in 0u32..160 {
            ops.push(DiffOp {
                core: (i % 3) as u8,
                // Collide heavily within 4 sets, revisit a small hot window.
                line: (i * 7 + (i / 5) * 3) % 48,
                store: i % 6 == 1,
            });
        }
        DiffCase {
            cores: 3,
            l2_sets_log2: 2,
            l2_ways: 2,
            migrate: true,
            mem_q: 3,
            check_every: 8,
            fabric: FabricKind::Directory,
            policy,
            ops,
        }
    }

    fn arc_policy() -> DiffPolicy {
        DiffPolicy::Arc
    }

    fn tinylfu_policy() -> DiffPolicy {
        DiffPolicy::TinyLfu {
            width: 64,
            depth: 4,
            sample_period: 32,
        }
    }

    fn rdcb_policy() -> DiffPolicy {
        DiffPolicy::Rdcb {
            entries: 64,
            threshold: 24,
            swap: true,
            seed: 0x4DCB,
        }
    }

    #[test]
    fn dump_parse_round_trip() {
        let case = sample_case();
        assert_eq!(parse_case(&dump_case(&case)).unwrap(), case);
        let mut bcast = case.clone();
        bcast.fabric = FabricKind::Broadcast;
        assert_eq!(parse_case(&dump_case(&bcast)).unwrap(), bcast);
        let mut avgcc = case;
        avgcc.policy = DiffPolicy::Avgcc {
            qos: true,
            epoch_accesses: 16,
            qos_epoch_cycles: 64,
            max_counters: Some(2),
            swap: false,
            seed: 7,
        };
        assert_eq!(parse_case(&dump_case(&avgcc)).unwrap(), avgcc);
        for policy in [arc_policy(), tinylfu_policy(), rdcb_policy()] {
            let mut c = sample_case();
            c.policy = policy;
            assert_eq!(parse_case(&dump_case(&c)).unwrap(), c);
        }
    }

    #[test]
    fn arc_case_matches() {
        assert!(run_case(&frontier_case(arc_policy())).is_ok());
    }

    #[test]
    fn tinylfu_case_matches() {
        assert!(run_case(&frontier_case(tinylfu_policy())).is_ok());
    }

    #[test]
    fn rdcb_case_matches() {
        assert!(run_case(&frontier_case(rdcb_policy())).is_ok());
    }

    #[test]
    fn frontier_cases_agree_across_fabrics() {
        for policy in [arc_policy(), tinylfu_policy(), rdcb_policy()] {
            assert!(run_case_cross_fabric(&frontier_case(policy)).is_ok());
        }
    }

    #[test]
    fn parse_rejects_bad_frontier_parameters() {
        let mut c = sample_case();
        c.policy = DiffPolicy::TinyLfu {
            width: 48,
            depth: 4,
            sample_period: 32,
        };
        assert!(parse_case(&dump_case(&c)).unwrap_err().contains("width"));
        c.policy = DiffPolicy::TinyLfu {
            width: 64,
            depth: 9,
            sample_period: 32,
        };
        assert!(parse_case(&dump_case(&c)).unwrap_err().contains("depth"));
        c.policy = DiffPolicy::Rdcb {
            entries: 48,
            threshold: 8,
            swap: false,
            seed: 1,
        };
        assert!(parse_case(&dump_case(&c)).unwrap_err().contains("entries"));
    }

    #[test]
    fn sample_case_matches() {
        assert!(run_case(&sample_case()).is_ok());
    }

    #[test]
    fn sample_case_matches_on_broadcast_fabric() {
        let mut case = sample_case();
        case.fabric = FabricKind::Broadcast;
        assert!(run_case(&case).is_ok());
    }

    #[test]
    fn fabric_key_defaults_to_directory_for_old_case_files() {
        let text = dump_case(&sample_case());
        let stripped: String = text
            .lines()
            .filter(|l| !l.starts_with("fabric"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(parse_case(&stripped).unwrap().fabric, FabricKind::Directory);
    }

    #[test]
    fn sample_case_fabrics_agree() {
        assert!(run_case_cross_fabric(&sample_case()).is_ok());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_case("cores x").is_err());
        assert!(parse_case("").is_err());
        assert!(parse_case("wibble 3").is_err());
    }

    #[test]
    fn parse_rejects_semantically_invalid_cases() {
        // Each would panic deep inside build_real; they must instead come
        // back as a diagnostic so `trace_tool repro` can exit cleanly.
        let break_one = |edit: fn(&mut DiffCase)| {
            let mut c = sample_case();
            edit(&mut c);
            parse_case(&dump_case(&c))
        };
        assert!(break_one(|c| c.cores = 0).unwrap_err().contains("cores"));
        assert!(break_one(|c| c.l2_sets_log2 = 40)
            .unwrap_err()
            .contains("l2sets_log2"));
        assert!(break_one(|c| c.l2_ways = 0).unwrap_err().contains("l2ways"));
        assert!(break_one(|c| c.l2_ways = 17)
            .unwrap_err()
            .contains("l2ways"));
        assert!(break_one(|c| c.mem_q = 0).unwrap_err().contains("memq"));
    }

    #[test]
    fn sample_case_resumes_at_any_split() {
        let case = sample_case();
        for split in 0..=case.ops.len() {
            assert!(run_case_resumed(&case, split).is_ok(), "split {split}");
        }
    }

    #[test]
    fn frontier_cases_resume_mid_run() {
        for policy in [arc_policy(), tinylfu_policy(), rdcb_policy()] {
            let case = frontier_case(policy);
            for split in [0, 40, 97, 160] {
                assert!(
                    run_case_resumed(&case, split).is_ok(),
                    "{:?} split {split}",
                    case.policy
                );
            }
        }
    }
}
