//! The trace arena's determinism contract, cross-crate.
//!
//! Materialized replay must be access-for-access identical to streaming
//! generation for *every* `SpecBench` model — byte address, access kind and
//! stream id — and the per-core seed derivation the runner uses must never
//! alias two different workloads onto one arena key.

use cmp_sim::{core_seed, mix_workloads, CORE_SPACE_BITS};
use cmp_trace::{
    four_app_mixes, two_app_mixes, Access, AccessStream, SharedTrace, SpecBench, TraceArena,
};
use std::collections::HashSet;

/// Enough accesses to cross several small-chunk boundaries and reach every
/// benchmark's burst phase scheduling at least partially.
const ACCESSES: usize = 20_000;
const SMALL_CHUNK: usize = 1 << 12;

fn take(stream: &mut dyn AccessStream, n: usize) -> Vec<Access> {
    (0..n).map(|_| stream.next_access()).collect()
}

#[test]
fn replay_equals_streaming_for_every_spec_bench() {
    for bench in SpecBench::ALL {
        for seed in [7u64, 42] {
            let base = 1u64 << CORE_SPACE_BITS;
            let mut streaming = bench.workload(base, seed).stream;
            let shared = SharedTrace::with_chunk_accesses(
                move || bench.workload(base, seed).stream,
                SMALL_CHUNK,
            );
            let mut cursor = shared.cursor();
            for i in 0..ACCESSES {
                assert_eq!(
                    cursor.next_access(),
                    streaming.next_access(),
                    "{bench:?} seed {seed} diverged at access {i}"
                );
            }
            assert_eq!(shared.chunks_generated(), ACCESSES.div_ceil(SMALL_CHUNK));
        }
    }
}

#[test]
fn default_chunk_size_replay_matches_streaming() {
    // The production chunk size (64 Ki): cross one boundary for a
    // representative bursty benchmark.
    let bench = SpecBench::Mcf;
    let shared = SharedTrace::new(move || bench.workload(0, 42).stream);
    let mut cursor = shared.cursor();
    let mut streaming = bench.workload(0, 42).stream;
    let n = cmp_trace::CHUNK_ACCESSES + 1000;
    assert_eq!(take(&mut cursor, n), take(streaming.as_mut(), n));
    assert_eq!(shared.chunks_generated(), 2);
}

/// Every seed the experiment bins actually use (`Scale` defaults to 42,
/// quick runs keep it, the goldens and criterion benches use 7) plus a
/// spread of others: the per-core derivation must give each core of a run
/// a distinct `(base, seed)` pair, so `(bench, base, seed)` arena keys
/// never collapse two different workloads into one trace.
#[test]
fn per_core_seed_derivation_never_aliases_arena_keys() {
    let bin_seeds = [42u64, 7];
    let spread: Vec<u64> = (0..64).map(|i| i * 0x9E37_79B9).collect();
    for &seed in bin_seeds.iter().chain(&spread) {
        let mut keys = HashSet::new();
        for core in 0..16 {
            let base = (core as u64) << CORE_SPACE_BITS;
            let derived = core_seed(seed, core);
            assert!(
                keys.insert((base, derived)),
                "seed {seed}: cores alias at core {core}"
            );
        }
        // The derivation itself must be injective over the core index even
        // ignoring the base separation (the `i << 8` bit range).
        let derived: HashSet<u64> = (0..256).map(|i| core_seed(seed, i)).collect();
        assert_eq!(derived.len(), 256, "seed {seed}: derived seeds collide");
    }
}

#[test]
fn mix_cores_get_distinct_streams() {
    // Same bench twice in one mix (e.g. homogeneous pairs) must still give
    // each core its own address region and RNG sequence.
    for mix in two_app_mixes().iter().chain(four_app_mixes().iter()) {
        for seed in [7u64, 42] {
            let mut ws = mix_workloads(mix, seed);
            let firsts: Vec<Vec<Access>> =
                ws.iter_mut().map(|w| take(w.stream.as_mut(), 64)).collect();
            for i in 0..firsts.len() {
                for j in i + 1..firsts.len() {
                    assert_ne!(
                        firsts[i], firsts[j],
                        "{}: cores {i} and {j} share a stream (seed {seed})",
                        mix.name
                    );
                }
            }
        }
    }
}

#[test]
fn arena_shares_one_trace_per_key_across_mixes() {
    // Two mixes containing the same (bench, core slot, seed) reuse one
    // materialization — the sharing the sweep's speedup comes from.
    let arena = TraceArena::with_max_bytes(u64::MAX);
    let t1 = arena.shared(SpecBench::Mcf, 0, 42);
    let t2 = arena.shared(SpecBench::Mcf, 0, 42);
    assert!(std::sync::Arc::ptr_eq(&t1, &t2));
    // ... while a different core slot of the same bench gets its own.
    let t3 = arena.shared(SpecBench::Mcf, 1 << CORE_SPACE_BITS, core_seed(42, 1));
    assert!(!std::sync::Arc::ptr_eq(&t1, &t3));
    assert_eq!(arena.traces(), 2);
}
