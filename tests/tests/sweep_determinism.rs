//! Sweep-pool determinism: a sweep of independent simulations must produce
//! byte-identical output regardless of worker count. One worker runs the
//! jobs inline on the caller's thread (the sequential engine); eight workers
//! race the same jobs over a scoped pool — results must come back in
//! submission order with every counter bit-equal.

use ascc::AsccConfig;
use cmp_cache::{CacheGeometry, LlcPolicy, PrivateBaseline};
use cmp_json::Value;
use cmp_sim::{run_mix, RunResult, SweepPool, SystemConfig};
use cmp_trace::two_app_mixes;

const INSTRS: u64 = 40_000;
const WARMUP: u64 = 10_000;

/// Small system so each job is quick but still exercises spills/evictions.
fn cfg() -> SystemConfig {
    let mut cfg = SystemConfig::table2(2);
    cfg.l1 = CacheGeometry::from_capacity(1 << 10, 2, 32).unwrap();
    cfg.l2 = CacheGeometry::from_capacity(16 << 10, 4, 32).unwrap();
    cfg
}

/// The job grid: (mix index, ASCC?) pairs over the first four 2-app mixes,
/// baseline and ASCC per mix.
fn jobs() -> Vec<(usize, bool)> {
    (0..4).flat_map(|m| [(m, false), (m, true)]).collect()
}

fn run_job(cfg: &SystemConfig, m: usize, ascc: bool) -> RunResult {
    let mix = &two_app_mixes()[m];
    let policy: Box<dyn LlcPolicy> = if ascc {
        Box::new(AsccConfig::ascc(cfg.cores, cfg.l2.sets(), cfg.l2.ways()).build())
    } else {
        Box::new(PrivateBaseline::new())
    };
    run_mix(cfg, mix, policy, INSTRS, WARMUP, 11)
}

/// Serializes every counter exactly (cycles as IEEE-754 bit patterns) so
/// "identical JSON" means identical simulations, not identical rounding.
fn to_json(results: &[RunResult]) -> String {
    let runs: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::object()
                .insert("policy", r.policy.clone())
                .insert("spills", r.spills as f64)
                .insert("swaps", r.swaps as f64)
                .insert("spill_hits", r.spill_hits as f64)
                .insert(
                    "cores",
                    Value::Array(
                        r.cores
                            .iter()
                            .map(|c| {
                                Value::object()
                                    .insert("label", c.label.clone())
                                    .insert("instrs", c.instrs as f64)
                                    .insert("cycles_bits", format!("{:016x}", c.cycles.to_bits()))
                                    .insert("l2_accesses", c.l2_accesses as f64)
                                    .insert("l2_local_hits", c.l2_local_hits as f64)
                                    .insert("l2_remote_hits", c.l2_remote_hits as f64)
                                    .insert("l2_mem", c.l2_mem as f64)
                                    .insert("writebacks", c.writebacks as f64)
                                    .insert("l1_accesses", c.l1_accesses as f64)
                                    .insert("l1_hits", c.l1_hits as f64)
                            })
                            .collect(),
                    ),
                )
        })
        .collect();
    Value::Array(runs).pretty()
}

#[test]
fn one_worker_and_eight_workers_agree_byte_for_byte() {
    let cfg = cfg();
    let sequential = SweepPool::with_jobs(1).map(jobs(), |(m, a)| run_job(&cfg, m, a));
    let parallel = SweepPool::with_jobs(8).map(jobs(), |(m, a)| run_job(&cfg, m, a));
    let seq_json = to_json(&sequential);
    let par_json = to_json(&parallel);
    assert!(
        !seq_json.is_empty() && seq_json.contains("cycles_bits"),
        "serializer produced no counters"
    );
    assert_eq!(
        seq_json, par_json,
        "a parallel sweep must be byte-identical to the sequential engine"
    );
}
