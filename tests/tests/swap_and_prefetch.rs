//! Focused end-to-end tests of two orchestration details: the §3.2
//! requested/victim swap and the §6.3 prefetcher integration.

use ascc::AsccConfig;
use ascc_integration::small_config;
use cmp_cache::{PrefetchConfig, PrivateBaseline};
use cmp_sim::CmpSystem;
use cmp_trace::{CoreWorkload, CpuModel, CyclicStream};

fn cpu() -> CpuModel {
    CpuModel {
        mem_fraction: 0.25,
        base_cpi: 1.0,
        overlap: 1.0,
        store_fraction: 0.0,
    }
}

fn loop_workload(label: &str, base: u64, bytes: u64) -> CoreWorkload {
    CoreWorkload {
        label: label.into(),
        cpu: cpu(),
        stream: Box::new(CyclicStream::new(base, bytes, 32, 0)),
    }
}

#[test]
fn swap_keeps_last_copies_on_chip() {
    // A thrashing loop beside an idle core. With swapping enabled, a remote
    // hit frees a slot in the receiver and immediately refills it with the
    // local victim — the steady state that keeps the whole loop on chip.
    let cfg = small_config(2);
    let build = |swap: bool| {
        let mut c = AsccConfig::ascc(2, cfg.l2.sets(), cfg.l2.ways());
        c.swap = swap;
        c.build()
    };
    let run = |swap: bool| {
        let mut sys = CmpSystem::new(
            cfg.clone(),
            Box::new(build(swap)),
            vec![
                loop_workload("hungry", 0, 72 << 10),
                loop_workload("idle", 1 << 40, 4 << 10),
            ],
        );
        sys.run(400_000, 100_000)
    };
    let with_swap = run(true);
    let without = run(false);
    assert!(with_swap.swaps > 0, "swap must actually trigger");
    assert_eq!(without.swaps, 0, "disabled swap must never trigger");
    // Swapping recycles the freed remote slot: at least as many remote hits.
    assert!(
        with_swap.cores[0].l2_remote_hits >= without.cores[0].l2_remote_hits,
        "swap {} vs no-swap {}",
        with_swap.cores[0].l2_remote_hits,
        without.cores[0].l2_remote_hits
    );
}

#[test]
fn prefetcher_reduces_stream_memory_stalls() {
    // A pure sequential stream is the stride prefetcher's best case: most
    // demand fetches become prefetch hits.
    let mut cfg = small_config(1);
    let mut run = |pf: Option<PrefetchConfig>| {
        cfg.prefetch = pf;
        let mut sys = CmpSystem::new(
            cfg.clone(),
            Box::new(PrivateBaseline::new()),
            vec![loop_workload("stream", 0, 32 << 20)],
        );
        sys.run(300_000, 50_000)
    };
    let without = run(None);
    let with_pf = run(Some(PrefetchConfig::default()));
    assert!(
        with_pf.cores[0].l2_mem < without.cores[0].l2_mem / 2,
        "prefetcher should hide most stream misses: {} -> {}",
        without.cores[0].l2_mem,
        with_pf.cores[0].l2_mem
    );
    // The traffic does not disappear — it moves into prefetch fetches.
    assert!(
        with_pf.cores[0].offchip_fetches >= without.cores[0].offchip_fetches * 9 / 10,
        "off-chip fetch counts must stay comparable"
    );
    assert!(with_pf.cores[0].cpi() < without.cores[0].cpi());
}

#[test]
fn prefetcher_leaves_random_traffic_alone() {
    use cmp_trace::ChaseStream;
    let mut cfg = small_config(1);
    let mk = || CoreWorkload {
        label: "chase".into(),
        cpu: cpu(),
        stream: Box::new(ChaseStream::new(0, 1 << 15, 32, 3, 0)),
    };
    let mut run = |pf: Option<PrefetchConfig>| {
        cfg.prefetch = pf;
        let mut sys = CmpSystem::new(cfg.clone(), Box::new(PrivateBaseline::new()), vec![mk()]);
        sys.run(200_000, 50_000)
    };
    let without = run(None);
    let with_pf = run(Some(PrefetchConfig::default()));
    // Random lines have no stride: useless-prefetch traffic must stay small.
    assert!(
        with_pf.cores[0].offchip_fetches < without.cores[0].offchip_fetches * 11 / 10,
        "no stride should be learned from random traffic: {} -> {}",
        without.cores[0].offchip_fetches,
        with_pf.cores[0].offchip_fetches
    );
}

#[test]
fn swap_respects_replication_mode() {
    // Under multithreaded replication, a remote read hit leaves the peer
    // copy in place, so the §3.2 swap (which needs the freed slot) must not
    // fire for read sharing.
    let mut cfg = small_config(2);
    cfg.read_policy = cmp_coherence::ReadPolicy::Replicate;
    let sets = cfg.l2.sets();
    let ways = cfg.l2.ways();
    let shared = || CoreWorkload {
        label: "sharer".into(),
        cpu: cpu(),
        stream: Box::new(CyclicStream::new(0x1000_0000, 16 << 10, 32, 0)),
    };
    let mut sys = CmpSystem::new(
        cfg.clone(),
        Box::new(AsccConfig::ascc(2, sets, ways).build()),
        vec![shared(), shared()],
    );
    let r = sys.run(150_000, 30_000);
    assert_eq!(r.swaps, 0, "read sharing must not trigger swaps");
    // Both cores replicate the shared loop: remote hits happen only while
    // establishing the copies, then both hit locally.
    assert!(r.cores[0].l2_local_hits > 0 && r.cores[1].l2_local_hits > 0);
}
