//! Scenario-diversity invariants: the multi-tenant traffic family and the
//! tunable-sharing workloads behave like first-class citizens of the
//! harness —
//!
//! * sweeps over them are byte-identical at any `ASCC_JOBS` worker count;
//! * arena replay of a tenant scenario equals streaming generation;
//! * raising the sharing degree raises the baseline miss rate (the
//!   compulsory/coherence component the sweep is designed to expose);
//! * a tenant-churn run snapshots and resumes bit-identically mid-run,
//!   churned RNG/shard state included.

use ascc::AsccConfig;
use ascc_integration::small_config;
use cmp_cache::{CacheGeometry, LlcPolicy, PrivateBaseline};
use cmp_json::Value;
use cmp_sim::{
    run_sharing, run_tenant, tenant_sources, CmpSystem, RunResult, SweepPool, SystemConfig,
};
use cmp_trace::{CpuModel, ParallelBench, SharingSpec, TenantParams, TenantScenario, TenantStream};

const INSTRS: u64 = 40_000;
const WARMUP: u64 = 10_000;
const SEED: u64 = 11;

fn ascc_policy(cfg: &SystemConfig) -> Box<dyn LlcPolicy> {
    Box::new(AsccConfig::ascc(cfg.cores, cfg.l2.sets(), cfg.l2.ways()).build())
}

/// Serializes every counter exactly (cycles as IEEE-754 bit patterns) so
/// "identical JSON" means identical simulations, not identical rounding.
fn to_json(results: &[RunResult]) -> String {
    let runs: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::object()
                .insert("policy", r.policy.clone())
                .insert("spills", r.spills as f64)
                .insert("swaps", r.swaps as f64)
                .insert("spill_hits", r.spill_hits as f64)
                .insert(
                    "cores",
                    Value::Array(
                        r.cores
                            .iter()
                            .map(|c| {
                                Value::object()
                                    .insert("label", c.label.clone())
                                    .insert("instrs", c.instrs as f64)
                                    .insert("cycles_bits", format!("{:016x}", c.cycles.to_bits()))
                                    .insert("l2_accesses", c.l2_accesses as f64)
                                    .insert("l2_local_hits", c.l2_local_hits as f64)
                                    .insert("l2_remote_hits", c.l2_remote_hits as f64)
                                    .insert("l2_mem", c.l2_mem as f64)
                                    .insert("writebacks", c.writebacks as f64)
                            })
                            .collect(),
                    ),
                )
        })
        .collect();
    Value::Array(runs).pretty()
}

/// The job grid: every tenant scenario plus three sharing points, each
/// under the baseline and under ASCC. Mixing the two families in one
/// sweep also exercises the arena under concurrent materialization of
/// unrelated `TraceKey`s.
fn run_grid_job(cfg: &SystemConfig, job: (usize, bool)) -> RunResult {
    let (idx, ascc) = job;
    let policy: Box<dyn LlcPolicy> = if ascc {
        ascc_policy(cfg)
    } else {
        Box::new(PrivateBaseline::new())
    };
    if idx < TenantScenario::ALL.len() {
        run_tenant(cfg, TenantScenario::ALL[idx], policy, INSTRS, WARMUP, SEED)
    } else {
        let d = [0.0, 0.3, 0.7][idx - TenantScenario::ALL.len()];
        run_sharing(
            cfg,
            ParallelBench::Fft,
            SharingSpec::read_write(d),
            policy,
            INSTRS,
            WARMUP,
            SEED,
        )
    }
}

#[test]
fn tenant_and_sharing_sweeps_are_worker_count_invariant() {
    let cfg = small_config(2);
    let jobs: Vec<(usize, bool)> = (0..TenantScenario::ALL.len() + 3)
        .flat_map(|i| [(i, false), (i, true)])
        .collect();
    let sequential = SweepPool::with_jobs(1).map(jobs.clone(), |j| run_grid_job(&cfg, j));
    let parallel = SweepPool::with_jobs(8).map(jobs, |j| run_grid_job(&cfg, j));
    let seq_json = to_json(&sequential);
    assert!(seq_json.contains("tenant:"), "tenant labels missing");
    assert_eq!(
        seq_json,
        to_json(&parallel),
        "a parallel scenario sweep must be byte-identical to the sequential engine"
    );
}

/// Arena replay and streaming generation drive the engine identically for
/// every tenant scenario: the same run built from arena-backed sources
/// ([`tenant_sources`]) and from plain streaming workloads must agree on
/// every counter.
#[test]
fn tenant_arena_replay_matches_streaming_generation() {
    let cfg = small_config(2);
    for s in TenantScenario::ALL {
        let replayed = CmpSystem::from_sources(
            cfg.clone(),
            ascc_policy(&cfg),
            tenant_sources(s, cfg.cores, SEED),
        )
        .run(INSTRS, WARMUP);
        let streamed = CmpSystem::new(
            cfg.clone(),
            ascc_policy(&cfg),
            (0..cfg.cores)
                .map(|c| s.workload(cfg.cores, c, SEED))
                .collect(),
        )
        .run(INSTRS, WARMUP);
        assert_eq!(replayed, streamed, "{s}: arena replay diverged");
    }
}

/// The calibration property the `sharing_degree` experiment rests on:
/// redirecting a larger fraction of each thread's accesses into the
/// shared Zipf pool must raise the baseline L2 MPKI. A pool access is a
/// fresh random line — an L1 miss and, across the 2 MB pool, usually a
/// compulsory/capacity L2 miss — where the base model's word-stride
/// sweeps pay one L2 access per eight references. (The miss *ratio* per
/// L2 access can fall at the same time, which is why the experiment's
/// calibration column is misses per kilo-instruction.)
#[test]
fn sharing_degree_raises_baseline_mpki_monotonically() {
    let mut cfg = SystemConfig::multithreaded(4);
    cfg.l1 = CacheGeometry::from_capacity(2 << 10, 4, 32).expect("valid L1");
    cfg.l2 = CacheGeometry::from_capacity(64 << 10, 8, 32).expect("valid L2");
    let mpki = |degree: f64| {
        let r = run_sharing(
            &cfg,
            ParallelBench::Fft,
            SharingSpec::read_write(degree),
            Box::new(PrivateBaseline::new()),
            150_000,
            30_000,
            SEED,
        );
        let misses: u64 = r.cores.iter().map(|c| c.l2_misses()).sum();
        let instrs: u64 = r.cores.iter().map(|c| c.instrs).sum();
        misses as f64 * 1000.0 / instrs as f64
    };
    let rates: Vec<f64> = [0.0, 0.3, 0.7].iter().map(|&d| mpki(d)).collect();
    assert!(
        rates[0] < rates[1] && rates[1] < rates[2],
        "baseline MPKI must rise with sharing degree, got {rates:?}"
    );
}

/// A churn-heavy tenant run — several tenants replaced, each replacement
/// reseeding its key-scramble salt and advancing the stream RNG — resumes
/// bit-identically from a mid-run snapshot. `churn_every` is shrunk so
/// multiple churn events land before the capture point, proving the
/// regenerate-and-fast-forward path reconstructs churned generation
/// counters, shard maps and RNG draws exactly.
#[test]
fn tenant_churn_state_survives_snapshot_resume() {
    let mut params = TenantParams::steady();
    params.tenants = 8;
    params.keys_per_tenant = 1 << 10;
    params.churn_every = 4_000;
    let cpu = CpuModel {
        mem_fraction: 0.30,
        base_cpi: 1.0,
        overlap: 0.45,
        store_fraction: params.store_fraction,
    };
    let cfg = small_config(2);
    let build = || {
        let workloads = (0..cfg.cores)
            .map(|c| cmp_trace::CoreWorkload {
                label: format!("churny.c{c}"),
                cpu,
                stream: Box::new(TenantStream::new(params, cfg.cores, c, c, SEED)),
            })
            .collect();
        CmpSystem::new(cfg.clone(), ascc_policy(&cfg), workloads)
    };

    let mut straight = build();
    let mut mid = None;
    let mut accesses = 0u64;
    // 12 000 global accesses ~ 6 000 per core stream: at least one churn
    // event behind the snapshot on every core.
    let straight_result = straight.run_with_hook(INSTRS, WARMUP, |s| {
        accesses += 1;
        if accesses == 12_000 {
            mid = Some(s.snapshot());
        }
    });
    let straight_end = straight.snapshot();
    let mid = mid.unwrap_or_else(|| panic!("run finished before capture ({accesses} accesses)"));

    let mut resumed = build();
    resumed.restore(&mid).expect("restore churny snapshot");
    let resumed_result = resumed.run(INSTRS, WARMUP);
    assert_eq!(
        resumed_result, straight_result,
        "RunResult diverged after mid-run restore across churn events"
    );
    assert_eq!(
        resumed.snapshot(),
        straight_end,
        "end-state snapshot diverged after mid-run restore"
    );
}
