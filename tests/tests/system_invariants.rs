//! System-level invariants that must hold under *every* policy:
//! L1 ⊆ L2 inclusion, MESI coherence, and single-copy residence for
//! multiprogrammed (disjoint address space) workloads.

use ascc_integration::{all_policies, small_config};
use cmp_coherence::assert_coherent;
use cmp_sim::{mix_workloads, CmpSystem};
use cmp_trace::{four_app_mixes, two_app_mixes, ParallelBench};

#[test]
fn inclusion_and_coherence_hold_under_every_policy() {
    let cfg = small_config(4);
    let mix = &four_app_mixes()[1];
    for policy in all_policies(&cfg) {
        let name = policy.name().to_string();
        let mut sys = CmpSystem::new(cfg.clone(), policy, mix_workloads(mix, 7));
        sys.run(120_000, 30_000);
        sys.assert_inclusive();
        assert_coherent(sys.l2s());
        drop(name);
    }
}

#[test]
fn multiprogrammed_lines_have_at_most_one_copy() {
    // Disjoint address spaces + migration: a line is never replicated, no
    // matter how often it is spilled, swapped and migrated.
    let cfg = small_config(2);
    let mix = &two_app_mixes()[0];
    for policy in all_policies(&cfg) {
        let mut sys = CmpSystem::new(cfg.clone(), policy, mix_workloads(mix, 3));
        let r = sys.run(150_000, 30_000);
        let mut seen = std::collections::HashSet::new();
        for cache in sys.l2s() {
            for s in 0..cache.geometry().sets() {
                for (_, line) in cache.set(cmp_cache::SetIdx(s)).iter() {
                    assert!(
                        seen.insert(line.addr),
                        "{}: line {:?} replicated across private L2s",
                        r.policy,
                        line.addr
                    );
                }
            }
        }
    }
}

#[test]
fn multithreaded_runs_stay_coherent_under_every_policy() {
    let mut cfg = small_config(4);
    cfg.read_policy = cmp_coherence::ReadPolicy::Replicate;
    for policy in all_policies(&cfg) {
        let workloads = ParallelBench::Lu.workloads(4, 11);
        let mut sys = CmpSystem::new(cfg.clone(), policy, workloads);
        let r = sys.run(100_000, 25_000);
        sys.assert_inclusive();
        assert_coherent(sys.l2s());
        assert!(r.cores.iter().all(|c| c.instrs >= 100_000), "{}", r.policy);
    }
}

#[test]
fn prefetcher_keeps_invariants() {
    let mut cfg = small_config(2);
    cfg.prefetch = Some(cmp_cache::PrefetchConfig::default());
    for policy in all_policies(&cfg) {
        let mut sys = CmpSystem::new(cfg.clone(), policy, mix_workloads(&two_app_mixes()[1], 5));
        sys.run(100_000, 25_000);
        sys.assert_inclusive();
        assert_coherent(sys.l2s());
    }
}

#[test]
fn counters_are_self_consistent() {
    let cfg = small_config(2);
    for policy in all_policies(&cfg) {
        let mut sys = CmpSystem::new(cfg.clone(), policy, mix_workloads(&two_app_mixes()[3], 9));
        let r = sys.run(150_000, 30_000);
        for c in &r.cores {
            assert_eq!(
                c.l2_accesses,
                c.l2_local_hits + c.l2_remote_hits + c.l2_mem,
                "{}: breakdown must partition L2 accesses",
                r.policy
            );
            assert!(c.l1_hits <= c.l1_accesses);
            assert!(c.cycles > 0.0 && c.instrs > 0);
        }
    }
}
