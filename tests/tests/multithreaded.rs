//! Multithreaded (§6.3) behaviour: replication, sharing and the policies'
//! reaction to shared working sets on the reduced 512 kB-class LLCs.

use ascc::AvgccConfig;
use ascc_integration::small_config;
use cmp_cache::PrivateBaseline;
use cmp_coherence::ReadPolicy;
use cmp_sim::{weighted_speedup_improvement, CmpSystem};
use cmp_trace::ParallelBench;

fn mt_config(cores: usize) -> cmp_sim::SystemConfig {
    let mut cfg = small_config(cores);
    cfg.read_policy = ReadPolicy::Replicate;
    cfg
}

#[test]
fn shared_data_produces_remote_hits_then_replicas() {
    let cfg = mt_config(4);
    let mut sys = CmpSystem::new(
        cfg.clone(),
        Box::new(PrivateBaseline::new()),
        ParallelBench::Streamcluster.workloads(4, 5),
    );
    let r = sys.run(150_000, 30_000);
    let remote: u64 = r.cores.iter().map(|c| c.l2_remote_hits).sum();
    assert!(
        remote > 0,
        "sharing threads must sometimes find lines in peers: {r:?}"
    );
    // Replication mode: shared lines can legitimately have several copies.
    cmp_coherence::assert_coherent(sys.l2s());
}

#[test]
fn every_parallel_model_runs_under_avgcc() {
    let cfg = mt_config(4);
    for b in ParallelBench::ALL {
        let policy = AvgccConfig::avgcc(cfg.cores, cfg.l2.sets(), cfg.l2.ways()).build();
        let mut sys = CmpSystem::new(cfg.clone(), Box::new(policy), b.workloads(4, 9));
        let r = sys.run(80_000, 20_000);
        assert!(
            r.cores.iter().all(|c| c.instrs >= 80_000),
            "{b}: all threads must reach their target"
        );
        sys.assert_inclusive();
        cmp_coherence::assert_coherent(sys.l2s());
    }
}

#[test]
fn writes_to_shared_data_invalidate_replicas() {
    // radix has shared read-write traffic (40% stores): after a run, no
    // line may be Modified in one cache and present in another.
    let cfg = mt_config(2);
    let mut sys = CmpSystem::new(
        cfg.clone(),
        Box::new(PrivateBaseline::new()),
        ParallelBench::Radix.workloads(2, 3),
    );
    sys.run(120_000, 30_000);
    cmp_coherence::assert_coherent(sys.l2s());
}

#[test]
fn avgcc_does_not_break_down_on_shared_workloads() {
    // §6.3's point: the policies still help (or at least do no serious
    // harm) when sets have a uniform demand across caches.
    let cfg = mt_config(4);
    let run = |policy: Box<dyn cmp_cache::LlcPolicy>| {
        let mut sys = CmpSystem::new(
            cfg.clone(),
            policy,
            ParallelBench::Streamcluster.workloads(4, 7),
        );
        sys.run(200_000, 50_000)
    };
    let base = run(Box::new(PrivateBaseline::new()));
    let avgcc = run(Box::new(
        AvgccConfig::avgcc(cfg.cores, cfg.l2.sets(), cfg.l2.ways()).build(),
    ));
    let ws = weighted_speedup_improvement(&avgcc, &base);
    assert!(ws > -0.05, "AVGCC must not wreck multithreaded runs: {ws}");
}
