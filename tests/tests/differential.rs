//! Differential fuzzing: the optimized engine vs the spec-literal oracle.
//!
//! Each case generates a small CMP (2–4 cores, tiny caches so sets contend
//! quickly), a policy configuration and an interleaved multi-core access
//! script, runs `cmp_sim::CmpSystem` and `cmp_oracle::OracleSystem` in
//! lockstep, and compares full architectural state at every checkpoint.
//! Failures are shrunk and dumped to `target/diff-failures/` for
//! `trace_tool repro`; the generator seed is persisted under
//! `proptest-regressions/`.
//!
//! The per-test case counts sum to over 1000 (overridable with
//! `PROPTEST_CASES`), split across the ASCC family, AVGCC, QoS-AVGCC, and
//! the post-2012 frontier policies (ARC, TinyLFU admission, RD-CB).

use ascc_integration::diff::{self, DiffCase, DiffOp, DiffPolicy};
use cmp_coherence::FabricKind;
use proptest::prelude::*;

type Shape = (u8, u8, u16, bool, u8, u32);

/// System shape: cores, l2 sets (log2), ways, read semantics, memory
/// fraction denominator, comparison period.
fn shape() -> impl Strategy<Value = Shape> {
    (
        2u8..=4,
        2u8..=4,
        prop_oneof![Just(2u16), Just(4)],
        prop::bool::ANY,
        1u8..=4,
        1u32..=9,
    )
}

/// Interleaved access script. Lines are drawn from a pool of ~1.5–6x the
/// smallest L2 capacity so evictions, spills and cross-core sharing all
/// happen within a short run; the core index is folded into range later.
fn ops() -> impl Strategy<Value = Vec<(u8, u32, bool)>> {
    prop::collection::vec((0u8..4, 0u32..96, prop::bool::ANY), 1..160)
}

fn make_case(sh: Shape, policy: DiffPolicy, raw: Vec<(u8, u32, bool)>) -> DiffCase {
    let (cores, l2_sets_log2, l2_ways, migrate, mem_q, check_every) = sh;
    DiffCase {
        cores,
        l2_sets_log2,
        l2_ways,
        migrate,
        mem_q,
        check_every,
        fabric: FabricKind::Directory,
        policy,
        ops: raw
            .into_iter()
            .map(|(c, line, store)| DiffOp {
                core: c % cores,
                line,
                store,
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]
    /// The ASCC family (full design plus 2-state, LRS, LMS+BIP, GMS+SABIP
    /// and coarse-counter ablations) never diverges from the oracle.
    #[test]
    fn ascc_family_matches_oracle(
        sh in shape(),
        knobs in (0u8..6, prop::bool::ANY, 0u64..1 << 48),
        raw in ops(),
    ) {
        let (variant, swap, seed) = knobs;
        let case = make_case(sh, DiffPolicy::Ascc { variant, swap, seed }, raw);
        diff::assert_case(&case);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(350))]
    /// AVGCC (adaptive granularity, no QoS) never diverges from the oracle.
    /// Epochs are kept tiny so granularity changes fire within the script.
    #[test]
    fn avgcc_matches_oracle(
        sh in shape(),
        knobs in (4u64..48, prop::bool::ANY, 0u8..3, prop::bool::ANY, 0u64..1 << 48),
        raw in ops(),
    ) {
        let (epoch_accesses, cap, cap_log2, swap, seed) = knobs;
        let policy = DiffPolicy::Avgcc {
            qos: false,
            epoch_accesses,
            qos_epoch_cycles: 100_000,
            max_counters: cap.then_some(1u32 << cap_log2),
            swap,
            seed,
        };
        diff::assert_case(&make_case(sh, policy, raw));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]
    /// QoS-AVGCC (miss sampling, ratio-scaled increments, cycle epochs)
    /// never diverges from the oracle.
    #[test]
    fn qos_avgcc_matches_oracle(
        sh in shape(),
        knobs in (4u64..48, 8u64..512, prop::bool::ANY, 0u64..1 << 48),
        raw in ops(),
    ) {
        let (epoch_accesses, qos_epoch_cycles, swap, seed) = knobs;
        let policy = DiffPolicy::Avgcc {
            qos: true,
            epoch_accesses,
            qos_epoch_cycles,
            max_counters: None,
            swap,
            seed,
        };
        diff::assert_case(&make_case(sh, policy, raw));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]
    /// Per-set ARC (T1/T2 partitions, B1/B2 ghosts, adaptive `p`) never
    /// diverges from the oracle transcription. ARC is RNG-free, so the only
    /// knobs are the system shape and the script.
    #[test]
    fn arc_matches_oracle(sh in shape(), raw in ops()) {
        diff::assert_case(&make_case(sh, DiffPolicy::Arc, raw));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]
    /// TinyLFU admission (count-min sketch + doorkeeper + halving reset)
    /// over the private-LRU baseline never diverges from the oracle. Sample
    /// periods are kept small so sketch resets fire within the script.
    #[test]
    fn tinylfu_matches_oracle(
        sh in shape(),
        knobs in (6u32..9, 1u32..5, 8u64..96),
        raw in ops(),
    ) {
        let (width_log2, depth, sample_period) = knobs;
        let policy = DiffPolicy::TinyLfu {
            width: 1 << width_log2,
            depth,
            sample_period,
        };
        diff::assert_case(&make_case(sh, policy, raw));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]
    /// Reuse-distance copy-back over full ASCC never diverges from the
    /// oracle — including the shared `SmallRng` draw sequence consumed by
    /// the wrapped receiver search on clean-victim copy-backs.
    #[test]
    fn rdcb_matches_oracle(
        sh in shape(),
        knobs in (6u32..10, 1u64..64, prop::bool::ANY, 0u64..1 << 48),
        raw in ops(),
    ) {
        let (entries_log2, threshold, swap, seed) = knobs;
        let policy = DiffPolicy::Rdcb {
            entries: 1 << entries_log2,
            threshold,
            swap,
            seed,
        };
        diff::assert_case(&make_case(sh, policy, raw));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]
    /// The broadcast bus and the sharer-bitmask directory are bit-identical
    /// fabrics: the same case run on both engines in lockstep must agree on
    /// every cache line, recency order, counter, and policy register at
    /// every checkpoint. Only `probes` may differ, and the directory's
    /// count must never exceed broadcast's — that O(sharers) <= O(cores)
    /// saving is the whole point of the snoop filter. The broadcast engine
    /// is additionally diffed against the oracle in broadcast mode, so the
    /// reference fabric keeps its own oracle coverage.
    #[test]
    fn broadcast_and_directory_fabrics_are_bit_identical(
        sh in shape(),
        knobs in (0u8..6, prop::bool::ANY, 0u64..1 << 48),
        raw in ops(),
    ) {
        let (variant, swap, seed) = knobs;
        let mut case = make_case(sh, DiffPolicy::Ascc { variant, swap, seed }, raw);
        if let Err(e) = diff::run_case_cross_fabric(&case) {
            panic!("fabric divergence: {e}");
        }
        case.fabric = FabricKind::Broadcast;
        diff::assert_case(&case);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]
    /// Resume mode: snapshot/restore the engine at an arbitrary split point
    /// mid-script, then continue in lockstep against the *uninterrupted*
    /// oracle. A checkpointed run is indistinguishable from a straight one.
    #[test]
    fn resumed_engine_matches_oracle(
        sh in shape(),
        qos in prop::bool::ANY,
        knobs in (0u8..6, 4u64..48, prop::bool::ANY, 0u64..1 << 48),
        split_pct in 0u8..=100,
        raw in ops(),
    ) {
        let (variant, epoch_accesses, swap, seed) = knobs;
        let policy = if qos {
            DiffPolicy::Avgcc {
                qos: true,
                epoch_accesses,
                qos_epoch_cycles: 64,
                max_counters: None,
                swap,
                seed,
            }
        } else {
            DiffPolicy::Ascc { variant, swap, seed }
        };
        let case = make_case(sh, policy, raw);
        let split = case.ops.len() * split_pct as usize / 100;
        if let Err(e) = diff::run_case_resumed(&case, split) {
            panic!("engine resumed at op {split} diverges from the oracle: {e}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(90))]
    /// Resume mode for the frontier policies: ghost-list order, sketch
    /// counters and reset epoch, predictor rows and copy-back clocks must
    /// all survive a snapshot/restore round trip mid-script — the resumed
    /// engine stays in lockstep with the uninterrupted oracle.
    #[test]
    fn resumed_frontier_policies_match_oracle(
        sh in shape(),
        which in 0u8..3,
        knobs in (1u64..48, prop::bool::ANY, 0u64..1 << 48),
        split_pct in 0u8..=100,
        raw in ops(),
    ) {
        let (threshold, swap, seed) = knobs;
        let policy = match which {
            0 => DiffPolicy::Arc,
            1 => DiffPolicy::TinyLfu { width: 64, depth: 4, sample_period: 1 + threshold },
            _ => DiffPolicy::Rdcb { entries: 64, threshold, swap, seed },
        };
        let case = make_case(sh, policy, raw);
        let split = case.ops.len() * split_pct as usize / 100;
        if let Err(e) = diff::run_case_resumed(&case, split) {
            panic!("engine resumed at op {split} diverges from the oracle: {e}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// The batched event loop (`ASCC_BATCH` on, the default) never diverges
    /// from the per-access streaming interleave: random mix/policy/scale
    /// draws must produce bit-identical results *and* end-state snapshots.
    /// The scripted oracle cases above drive `step()` directly and so
    /// bypass the front-end; this case covers the batched front-end the
    /// real experiment binaries run.
    #[test]
    fn batched_front_end_matches_streaming(
        mix_idx in 0usize..14,
        policy_idx in 0usize..14,
        seed in 0u64..1 << 16,
        instrs in 10_000u64..50_000,
    ) {
        use ascc_integration::{all_policies, small_config};
        use cmp_sim::{mix_sources, CmpSystem};
        use cmp_trace::two_app_mixes;
        let cfg = small_config(2);
        let mix = &two_app_mixes()[mix_idx];
        let build = || all_policies(&cfg).remove(policy_idx);
        let mut streaming = CmpSystem::from_sources(cfg.clone(), build(), mix_sources(mix, seed));
        let mut batched = CmpSystem::from_sources(cfg.clone(), build(), mix_sources(mix, seed));
        let rs = streaming.run_streaming(instrs, instrs / 4);
        let rb = batched.run_batched(instrs, instrs / 4);
        prop_assert_eq!(rb, rs, "batched front-end diverged from streaming");
        prop_assert_eq!(
            batched.snapshot(),
            streaming.snapshot(),
            "batched end-state snapshot diverged from streaming"
        );
    }
}

/// Every committed repro case under `regressions/` must replay cleanly —
/// once a divergence is fixed, its shrunk trace stays in the suite.
#[test]
fn committed_repro_cases_still_match() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("regressions");
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "case") {
            let p = path.display().to_string();
            if let Err(e) = diff::repro_file(&p) {
                panic!("committed repro {p} diverges again: {e}");
            }
        }
    }
}
