//! Crash-resume invariant: *restore-at-access-N then run ≡ straight run*.
//!
//! Three layers of evidence, in increasing strictness:
//!
//! * every policy in the zoo round-trips through `CmpSystem::snapshot` /
//!   `restore` mid-run and finishes with a bit-identical `RunResult` *and*
//!   a byte-identical end-state snapshot;
//! * the adaptive policies are checked at their most stateful: AVGCC
//!   captured mid-epoch with a non-default granularity `D`, QoS-AVGCC with
//!   a live (updated) QoS estimator;
//! * the differential harness replays resumed cases in lockstep against
//!   the uninterrupted spec-literal oracle (`diff::run_case_resumed`).

use ascc_integration::diff::{run_case_resumed, DiffCase, DiffOp, DiffPolicy};
use ascc_integration::{all_policies, small_config};
use cmp_cache::{CacheGeometry, CoreId, LlcPolicy};
use cmp_sim::{mix_sources, CmpSystem, SystemConfig};
use cmp_trace::two_app_mixes;

const INSTRS: u64 = 40_000;
const WARMUP: u64 = 10_000;
const SEED: u64 = 11;

fn avgcc_of(s: &CmpSystem) -> &ascc::AvgccPolicy {
    s.policy()
        .as_any()
        .downcast_ref()
        .expect("an AVGCC-family system")
}

fn d_of(p: &ascc::AvgccPolicy) -> Vec<u8> {
    (0..2).map(|c| p.granularity_log2(CoreId(c))).collect()
}

/// A pressured 2-core system (16 kB 4-way L2) so adaptive state — roles,
/// duelling counters, granularity — moves within a short run.
fn pressured_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::table2(2);
    cfg.l1 = CacheGeometry::from_capacity(1 << 10, 2, 32).unwrap();
    cfg.l2 = CacheGeometry::from_capacity(16 << 10, 4, 32).unwrap();
    cfg
}

/// Runs `straight` to completion capturing a snapshot at the `capture_at`-th
/// access, then restores `resumed` (an identically built system) from it and
/// runs it; asserts results and end states are bit-identical.
fn assert_resume_identical(
    name: &str,
    mut straight: CmpSystem,
    mut resumed: CmpSystem,
    capture_at: u64,
) {
    let mut mid = None;
    let mut accesses = 0u64;
    let straight_result = straight.run_with_hook(INSTRS, WARMUP, |s| {
        accesses += 1;
        if accesses == capture_at {
            mid = Some(s.snapshot());
        }
    });
    let straight_end = straight.snapshot();
    let mid = mid.unwrap_or_else(|| {
        panic!("{name}: run finished before access {capture_at} ({accesses} hooks)")
    });
    resumed
        .restore(&mid)
        .unwrap_or_else(|e| panic!("{name}: restore: {e}"));
    let resumed_result = resumed.run(INSTRS, WARMUP);
    assert_eq!(
        resumed_result, straight_result,
        "{name}: RunResult diverged after mid-run restore"
    );
    assert_eq!(
        resumed.snapshot(),
        straight_end,
        "{name}: end-state snapshot diverged after mid-run restore"
    );
}

/// Every policy the simulator can drive survives a mid-run snapshot/restore
/// round trip bit-identically.
#[test]
fn all_policies_resume_bit_identically() {
    let cfg = small_config(2);
    let mix = &two_app_mixes()[0];
    for (a, b) in all_policies(&cfg).into_iter().zip(all_policies(&cfg)) {
        let name = a.name().to_string();
        let straight = CmpSystem::from_sources(cfg.clone(), a, mix_sources(mix, SEED));
        let resumed = CmpSystem::from_sources(cfg.clone(), b, mix_sources(mix, SEED));
        assert_resume_identical(&name, straight, resumed, 7_777);
    }
}

/// AVGCC captured mid-epoch with a non-default granularity: the restored
/// policy reports the same `D`, `A`/`B` counters and change count, and the
/// rest of the run is bit-identical.
#[test]
fn avgcc_mid_epoch_resume_preserves_granularity_state() {
    let cfg = pressured_cfg();
    let mix = &two_app_mixes()[0];
    let (sets, ways) = (cfg.l2.sets(), cfg.l2.ways());
    let build = || {
        let mut c = ascc::AvgccConfig::avgcc(2, sets, ways);
        c.epoch_accesses = 256; // fast epochs so granularity moves early
        Box::new(c.build()) as Box<dyn LlcPolicy>
    };
    let default_d = {
        let sys = CmpSystem::from_sources(cfg.clone(), build(), mix_sources(mix, SEED));
        d_of(avgcc_of(&sys))
    };

    let mut straight = CmpSystem::from_sources(cfg.clone(), build(), mix_sources(mix, SEED));
    let mut captured: Option<(Vec<u8>, Vec<u8>, u64)> = None;
    let mut accesses = 0u64;
    let straight_result = straight.run_with_hook(INSTRS, WARMUP, |s| {
        accesses += 1;
        if captured.is_some() {
            return;
        }
        let d = d_of(avgcc_of(s));
        // Capture at an access count off any multiple of the 256-access
        // epoch, with the granularity demonstrably away from its start.
        if d != default_d && !accesses.is_multiple_of(256) {
            let changes = avgcc_of(s).granularity_changes();
            captured = Some((s.snapshot(), d, changes));
        }
    });
    let straight_end = straight.snapshot();
    let (snap, d, changes) =
        captured.expect("AVGCC never left its default granularity; test workload too gentle");
    assert!(changes > 0);

    let mut resumed = CmpSystem::from_sources(cfg.clone(), build(), mix_sources(mix, SEED));
    resumed.restore(&snap).expect("restore AVGCC snapshot");
    assert_eq!(d_of(avgcc_of(&resumed)), d, "restored granularity D");
    assert_eq!(
        avgcc_of(&resumed).granularity_changes(),
        changes,
        "restored change count"
    );
    let resumed_result = resumed.run(INSTRS, WARMUP);
    assert_eq!(resumed_result, straight_result);
    assert_eq!(resumed.snapshot(), straight_end);
}

/// QoS-AVGCC captured with a live QoS estimator (a ratio that has moved off
/// its initial value) resumes bit-identically and reports the same ratios.
#[test]
fn qos_avgcc_resume_preserves_inhibition_state() {
    let cfg = pressured_cfg();
    let mix = &two_app_mixes()[0];
    let (sets, ways) = (cfg.l2.sets(), cfg.l2.ways());
    let build = || {
        let mut c = ascc::AvgccConfig::qos_avgcc(2, sets, ways);
        c.epoch_accesses = 256;
        c.qos_epoch_cycles = 4_096; // frequent QoS epochs
        Box::new(c.build()) as Box<dyn LlcPolicy>
    };
    let ratios = |s: &CmpSystem| -> Vec<f64> {
        let p = s
            .policy()
            .as_any()
            .downcast_ref::<ascc::AvgccPolicy>()
            .expect("QoS-AVGCC system");
        (0..2).map(|c| p.qos_ratio(CoreId(c))).collect()
    };

    let mut straight = CmpSystem::from_sources(cfg.clone(), build(), mix_sources(mix, SEED));
    let mut captured: Option<(Vec<u8>, Vec<f64>)> = None;
    let straight_result = straight.run_with_hook(INSTRS, WARMUP, |s| {
        if captured.is_none() {
            let r = ratios(s);
            if r.iter().any(|&x| x != 1.0) {
                captured = Some((s.snapshot(), r));
            }
        }
    });
    let straight_end = straight.snapshot();
    let (snap, r) = captured.expect("QoS estimator never updated; test workload too gentle");

    let mut resumed = CmpSystem::from_sources(cfg.clone(), build(), mix_sources(mix, SEED));
    resumed.restore(&snap).expect("restore QoS-AVGCC snapshot");
    assert_eq!(ratios(&resumed), r, "restored QoS ratios");
    let resumed_result = resumed.run(INSTRS, WARMUP);
    assert_eq!(resumed_result, straight_result);
    assert_eq!(resumed.snapshot(), straight_end);
}

/// The directory fabric's sharer table is derived state: a snapshot holds
/// only its stats and a digest, and restore rebuilds the table from the
/// restored L2s, validating the digest. A mid-run round trip must therefore
/// be bit-identical on *both* fabrics, and a snapshot taken on one fabric
/// must refuse to restore into a system configured with the other.
#[test]
fn fabrics_resume_bit_identically_and_reject_cross_restore() {
    use cmp_coherence::FabricKind;
    let mix = &two_app_mixes()[0];
    for kind in [FabricKind::Broadcast, FabricKind::Directory] {
        let cfg = pressured_cfg().with_fabric(kind);
        let build = || {
            CmpSystem::from_sources(
                cfg.clone(),
                all_policies(&cfg).remove(0),
                mix_sources(mix, SEED),
            )
        };
        assert_resume_identical(&format!("{kind:?} fabric"), build(), build(), 7_777);

        let other = match kind {
            FabricKind::Broadcast => FabricKind::Directory,
            FabricKind::Directory => FabricKind::Broadcast,
        };
        let mut donor = build();
        donor.run(2_000, 500);
        let snap = donor.snapshot();
        let other_cfg = cfg.clone().with_fabric(other);
        let mut wrong = CmpSystem::from_sources(
            other_cfg.clone(),
            all_policies(&other_cfg).remove(0),
            mix_sources(mix, SEED),
        );
        let err = wrong
            .restore(&snap)
            .expect_err("cross-fabric restore must be rejected");
        assert!(
            err.to_string().contains("fabric"),
            "unexpected cross-fabric restore error: {err}"
        );
    }
}

/// ARC captured with live adaptive state — non-empty ghost lists and at
/// least one set whose target `p` has moved off zero: the restored policy
/// reports identical ghost order, T2 membership and per-set targets, and
/// the rest of the run is bit-identical.
#[test]
fn arc_resume_preserves_ghost_lists_and_p_targets() {
    let cfg = pressured_cfg();
    let mix = &two_app_mixes()[0];
    let (sets, ways) = (cfg.l2.sets(), cfg.l2.ways());
    let build = || Box::new(ascc::ArcConfig::new(2, sets, ways).build()) as Box<dyn LlcPolicy>;
    let arc_state = |s: &CmpSystem| {
        let p = s
            .policy()
            .as_any()
            .downcast_ref::<ascc::ArcPolicy>()
            .expect("an ARC system");
        let mut per_set = Vec::new();
        for c in 0..2u8 {
            for set in 0..sets {
                per_set.push((
                    p.p_of(CoreId(c), cmp_cache::SetIdx(set)),
                    p.t2_mask(CoreId(c), cmp_cache::SetIdx(set)),
                    p.ghosts(CoreId(c), cmp_cache::SetIdx(set)),
                ));
            }
        }
        (per_set, p.ghost_hits())
    };

    let mut straight = CmpSystem::from_sources(cfg.clone(), build(), mix_sources(mix, SEED));
    let mut captured = None;
    let straight_result = straight.run_with_hook(INSTRS, WARMUP, |s| {
        if captured.is_none() {
            let (per_set, hits) = arc_state(s);
            let adapted = per_set.iter().any(|(p, _, _)| *p > 0);
            let ghosted = per_set
                .iter()
                .any(|(_, _, (b1, b2))| b1.len() + b2.len() > 1);
            if adapted && ghosted && hits.0 + hits.1 > 0 {
                captured = Some((s.snapshot(), per_set.clone(), hits));
            }
        }
    });
    let straight_end = straight.snapshot();
    let (snap, per_set, hits) =
        captured.expect("ARC never adapted p / filled ghosts; test workload too gentle");

    let mut resumed = CmpSystem::from_sources(cfg.clone(), build(), mix_sources(mix, SEED));
    resumed.restore(&snap).expect("restore ARC snapshot");
    let (rs, rh) = arc_state(&resumed);
    assert_eq!(rs, per_set, "restored per-set p / T2 / ghost-list order");
    assert_eq!(rh, hits, "restored ghost-hit counters");
    let resumed_result = resumed.run(INSTRS, WARMUP);
    assert_eq!(resumed_result, straight_result);
    assert_eq!(resumed.snapshot(), straight_end);
}

/// TinyLFU captured mid-sample-window with a warm sketch: the restored
/// filter reports identical sketch counters, doorkeeper bits, window
/// position and reset epoch, and the rest of the run is bit-identical.
#[test]
fn tinylfu_resume_preserves_sketch_and_reset_epoch() {
    let cfg = pressured_cfg();
    let mix = &two_app_mixes()[0];
    let (sets, ways) = (cfg.l2.sets(), cfg.l2.ways());
    let build = || {
        let mut c = ascc::TinyLfuConfig::for_geometry(2, sets, ways);
        c.sample_period = 2_048; // fast windows so resets fire mid-run
        Box::new(c.build()) as Box<dyn LlcPolicy>
    };
    let lfu_state = |s: &CmpSystem| {
        let p = s
            .policy()
            .as_any()
            .downcast_ref::<ascc::TinyLfuPolicy>()
            .expect("a TinyLFU system");
        (
            p.sketch_counters(),
            p.doorkeeper_bits(),
            p.samples(),
            p.resets(),
            p.admissions(),
            p.rejections(),
        )
    };

    let mut straight = CmpSystem::from_sources(cfg.clone(), build(), mix_sources(mix, SEED));
    let mut captured = None;
    let straight_result = straight.run_with_hook(INSTRS, WARMUP, |s| {
        if captured.is_none() {
            let st = lfu_state(s);
            // Mid-window (samples != 0), post-reset, with a warm sketch.
            if st.3 > 0 && st.2 > 0 && st.0.iter().flatten().any(|&c| c > 0) {
                captured = Some((s.snapshot(), st));
            }
        }
    });
    let straight_end = straight.snapshot();
    let (snap, st) = captured.expect("TinyLFU never reset mid-run; test workload too gentle");

    let mut resumed = CmpSystem::from_sources(cfg.clone(), build(), mix_sources(mix, SEED));
    resumed.restore(&snap).expect("restore TinyLFU snapshot");
    assert_eq!(
        lfu_state(&resumed),
        st,
        "restored sketch / doorkeeper / window / epoch state"
    );
    let resumed_result = resumed.run(INSTRS, WARMUP);
    assert_eq!(resumed_result, straight_result);
    assert_eq!(resumed.snapshot(), straight_end);
}

/// RD-CB captured with a live predictor (recorded finite distances and
/// advanced per-core clocks): the restored policy reports identical
/// predictor rows and clocks, and the rest of the run — including further
/// RNG-consuming receiver searches — is bit-identical.
#[test]
fn rdcb_resume_preserves_predictor_and_clocks() {
    let cfg = pressured_cfg();
    let mix = &two_app_mixes()[0];
    let (sets, ways) = (cfg.l2.sets(), cfg.l2.ways());
    let build = || Box::new(ascc::RdcbConfig::new(2, sets, ways).build()) as Box<dyn LlcPolicy>;
    let rdcb_state = |s: &CmpSystem| {
        let p = s
            .policy()
            .as_any()
            .downcast_ref::<ascc::RdcbPolicy>()
            .expect("an RD-CB system");
        (
            (0..2)
                .map(|c| p.predictor_rows(CoreId(c)))
                .collect::<Vec<_>>(),
            (0..2).map(|c| p.clock_of(CoreId(c))).collect::<Vec<_>>(),
            p.copy_backs(),
        )
    };

    let mut straight = CmpSystem::from_sources(cfg.clone(), build(), mix_sources(mix, SEED));
    let mut captured = None;
    let straight_result = straight.run_with_hook(INSTRS, WARMUP, |s| {
        if captured.is_none() {
            let st = rdcb_state(s);
            let finite =
                st.0.iter()
                    .flatten()
                    .filter(|(tag, _, dist)| *tag != 0 && *dist != u64::MAX)
                    .count();
            if finite > 8 && st.1.iter().all(|&c| c > 0) {
                captured = Some((s.snapshot(), st));
            }
        }
    });
    let straight_end = straight.snapshot();
    let (snap, st) =
        captured.expect("RD-CB never copied back / recorded distances; workload too gentle");

    let mut resumed = CmpSystem::from_sources(cfg.clone(), build(), mix_sources(mix, SEED));
    resumed.restore(&snap).expect("restore RD-CB snapshot");
    assert_eq!(rdcb_state(&resumed), st, "restored predictor rows / clocks");
    let resumed_result = resumed.run(INSTRS, WARMUP);
    assert_eq!(resumed_result, straight_result);
    assert_eq!(resumed.snapshot(), straight_end);
}

/// Deterministic interleaved script for the differential resume cases.
fn lcg_ops(n: usize, cores: u8, lines: u32, mut x: u64) -> Vec<DiffOp> {
    x |= 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            DiffOp {
                core: ((x >> 33) % cores as u64) as u8,
                line: ((x >> 17) % lines as u64) as u32,
                store: (x >> 5) & 1 == 1,
            }
        })
        .collect()
}

/// The resumed engine stays in lockstep with the *uninterrupted* oracle —
/// snapshot/restore is invisible to an independent reference implementation.
/// Splits at the start, middle and end of each script.
#[test]
fn diff_oracle_accepts_resumed_engine() {
    let cases = [
        (
            "ascc",
            DiffCase {
                cores: 3,
                l2_sets_log2: 3,
                l2_ways: 4,
                migrate: true,
                mem_q: 2,
                check_every: 5,
                fabric: cmp_coherence::FabricKind::Directory,
                policy: DiffPolicy::Ascc {
                    variant: 0,
                    swap: true,
                    seed: 0xA5CC,
                },
                ops: lcg_ops(240, 3, 96, 0xDEAD),
            },
        ),
        (
            "qos-avgcc",
            DiffCase {
                cores: 2,
                l2_sets_log2: 2,
                l2_ways: 2,
                migrate: false,
                mem_q: 3,
                check_every: 7,
                // The reference fabric: broadcast resume stays under
                // oracle scrutiny too.
                fabric: cmp_coherence::FabricKind::Broadcast,
                policy: DiffPolicy::Avgcc {
                    qos: true,
                    epoch_accesses: 16,
                    qos_epoch_cycles: 64,
                    max_counters: None,
                    swap: true,
                    seed: 0xBEEF,
                },
                ops: lcg_ops(240, 2, 64, 0xF00D),
            },
        ),
        (
            "arc",
            DiffCase {
                cores: 2,
                l2_sets_log2: 2,
                l2_ways: 4,
                migrate: true,
                mem_q: 2,
                check_every: 3,
                fabric: cmp_coherence::FabricKind::Directory,
                policy: DiffPolicy::Arc,
                ops: lcg_ops(240, 2, 48, 0xACED),
            },
        ),
        (
            "tinylfu",
            DiffCase {
                cores: 2,
                l2_sets_log2: 2,
                l2_ways: 2,
                migrate: true,
                mem_q: 2,
                check_every: 5,
                fabric: cmp_coherence::FabricKind::Directory,
                policy: DiffPolicy::TinyLfu {
                    width: 64,
                    depth: 4,
                    sample_period: 24,
                },
                ops: lcg_ops(240, 2, 48, 0x7151),
            },
        ),
        (
            "rdcb",
            DiffCase {
                cores: 3,
                l2_sets_log2: 2,
                l2_ways: 2,
                migrate: true,
                mem_q: 2,
                check_every: 5,
                fabric: cmp_coherence::FabricKind::Directory,
                policy: DiffPolicy::Rdcb {
                    entries: 64,
                    threshold: 32,
                    swap: true,
                    seed: 0x4DCB,
                },
                ops: lcg_ops(240, 3, 48, 0xCB01),
            },
        ),
    ];
    for (name, case) in &cases {
        for split in [0, 1, case.ops.len() / 2, case.ops.len() - 1, case.ops.len()] {
            run_case_resumed(case, split).unwrap_or_else(|e| panic!("{name} split {split}: {e}"));
        }
    }
}
