//! Property tests over the full simulator: random small workload shapes and
//! policy choices must never violate the structural invariants.

use ascc_integration::{all_policies, small_config};
use cmp_coherence::assert_coherent;
use cmp_sim::CmpSystem;
use cmp_trace::{ChaseStream, CoreWorkload, CpuModel, CyclicStream, Mixture, ZipfStream};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct WorkloadShape {
    hot_kb: u64,
    tail_lines: u64,
    tail_zipf: bool,
    store_frac: f64,
    mem_frac: f64,
}

fn shape() -> impl Strategy<Value = WorkloadShape> {
    (
        1u64..128,
        prop_oneof![Just(64u64), Just(1024), Just(4096), Just(16384)],
        prop::bool::ANY,
        0.0f64..0.5,
        0.1f64..0.6,
    )
        .prop_map(
            |(hot_kb, tail_lines, tail_zipf, store_frac, mem_frac)| WorkloadShape {
                hot_kb,
                tail_lines,
                tail_zipf,
                store_frac,
                mem_frac,
            },
        )
}

fn build(core: usize, s: &WorkloadShape, seed: u64) -> CoreWorkload {
    let base = (core as u64) << 40;
    let hot = CyclicStream::words(base, s.hot_kb << 10, 0);
    let tail: Box<dyn cmp_trace::AccessStream> = if s.tail_zipf {
        Box::new(ZipfStream::new(
            base + (1 << 30),
            s.tail_lines,
            32,
            0.9,
            seed,
            1,
        ))
    } else {
        Box::new(ChaseStream::new(
            base + (1 << 30),
            s.tail_lines,
            32,
            seed,
            1,
        ))
    };
    CoreWorkload {
        label: format!("w{core}"),
        cpu: CpuModel {
            mem_fraction: s.mem_frac,
            base_cpi: 1.0,
            overlap: 0.5,
            store_fraction: s.store_frac,
        },
        stream: Box::new(Mixture::new(
            vec![
                (0.7, Box::new(hot) as Box<dyn cmp_trace::AccessStream>),
                (0.3, tail),
            ],
            s.store_frac,
            seed ^ 0xF00,
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn random_workloads_never_break_invariants(
        s0 in shape(),
        s1 in shape(),
        policy_idx in 0usize..14,
        seed in 0u64..1000,
    ) {
        let cfg = small_config(2);
        let policy = all_policies(&cfg).swap_remove(policy_idx);
        let workloads = vec![build(0, &s0, seed), build(1, &s1, seed ^ 1)];
        let mut sys = CmpSystem::new(cfg, policy, workloads);
        let r = sys.run(60_000, 15_000);
        sys.assert_inclusive();
        assert_coherent(sys.l2s());
        for c in &r.cores {
            prop_assert_eq!(c.l2_accesses, c.l2_local_hits + c.l2_remote_hits + c.l2_mem);
            prop_assert!(c.instrs >= 60_000);
        }
    }
}
