//! Batched-vs-streaming engine equivalence (DESIGN.md §5h).
//!
//! The batched event loop drains whole trace-chunk runs per core instead of
//! re-scheduling after every access; it must be *bit-identical* to the
//! streaming interleave it replaced. Four layers of evidence:
//!
//! * every policy in the zoo produces the same `RunResult` *and* the same
//!   end-state snapshot bytes under both front-ends;
//! * an 8-worker `SweepPool` of batched runs is byte-identical to the
//!   sequential streaming engine;
//! * the batched hook fires at *exactly* every `hook_every` global accesses
//!   (the `ASCC_CKPT_EVERY` contract), and a run aborted at a mid-batch
//!   checkpoint restores and finishes bit-identically;
//! * a real mid-batch SIGKILL of a checkpointed `run_mix` child process,
//!   followed by `ASCC_RESUME=1`, reproduces the uninterrupted run's
//!   result byte-for-byte.

use ascc_integration::{all_policies, small_config};
use cmp_cache::{CacheGeometry, LlcPolicy};
use cmp_sim::{mix_sources, CmpSystem, SweepPool, SystemConfig};
use cmp_trace::two_app_mixes;

const INSTRS: u64 = 40_000;
const WARMUP: u64 = 10_000;
const SEED: u64 = 11;

/// A pressured 2-core system (16 kB 4-way L2) so evictions, spills and
/// adaptive-policy state changes all happen within a short run.
fn pressured_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::table2(2);
    cfg.l1 = CacheGeometry::from_capacity(1 << 10, 2, 32).unwrap();
    cfg.l2 = CacheGeometry::from_capacity(16 << 10, 4, 32).unwrap();
    cfg
}

fn sys_for(cfg: &SystemConfig, mix_idx: usize, policy: Box<dyn LlcPolicy>) -> CmpSystem {
    let mix = &two_app_mixes()[mix_idx];
    CmpSystem::from_sources(cfg.clone(), policy, mix_sources(mix, SEED))
}

/// Every policy the simulator can drive: batched run == streaming run, down
/// to the end-state snapshot bytes (tags, recency words, policy state,
/// cursor positions — everything `snapshot()` serializes).
#[test]
fn batched_matches_streaming_for_every_policy() {
    let cfg = pressured_cfg();
    for (a, b) in all_policies(&cfg).into_iter().zip(all_policies(&cfg)) {
        let name = a.name().to_string();
        let mut streaming = sys_for(&cfg, 0, a);
        let mut batched = sys_for(&cfg, 0, b);
        let rs = streaming.run_streaming(INSTRS, WARMUP);
        let rb = batched.run_batched(INSTRS, WARMUP);
        assert_eq!(rb, rs, "{name}: RunResult diverged under batching");
        assert_eq!(
            batched.snapshot(),
            streaming.snapshot(),
            "{name}: end-state snapshot diverged under batching"
        );
    }
}

/// The streaming workload path (no materialized chunks, so every access
/// goes through the batched loop's per-access fallback) is also identical.
#[test]
fn batched_matches_streaming_without_trace_chunks() {
    use cmp_sim::mix_workloads;
    let cfg = small_config(2);
    let mix = &two_app_mixes()[1];
    for (a, b) in all_policies(&cfg).into_iter().zip(all_policies(&cfg)) {
        let name = a.name().to_string();
        let mut streaming = CmpSystem::new(cfg.clone(), a, mix_workloads(mix, SEED));
        let mut batched = CmpSystem::new(cfg.clone(), b, mix_workloads(mix, SEED));
        let rs = streaming.run_streaming(INSTRS, WARMUP);
        let rb = batched.run_batched(INSTRS, WARMUP);
        assert_eq!(rb, rs, "{name}: generator-fed RunResult diverged");
    }
}

/// An 8-worker sweep of *batched* runs must be byte-identical to the
/// sequential *streaming* engine — batching composes with the parallel
/// fan-out without perturbing any run.
#[test]
fn eight_worker_batched_sweep_matches_sequential_streaming() {
    let cfg = pressured_cfg();
    let jobs: Vec<(usize, bool)> = (0..4).flat_map(|m| [(m, false), (m, true)]).collect();
    let build = |ascc: bool| -> Box<dyn LlcPolicy> {
        if ascc {
            Box::new(ascc::AsccConfig::ascc(cfg.cores, cfg.l2.sets(), cfg.l2.ways()).build())
        } else {
            Box::new(cmp_cache::PrivateBaseline::new())
        }
    };
    let sequential: Vec<_> = jobs
        .iter()
        .map(|&(m, a)| sys_for(&cfg, m, build(a)).run_streaming(INSTRS, WARMUP))
        .collect();
    let parallel = SweepPool::with_jobs(8).map(jobs, |(m, a)| {
        sys_for(&cfg, m, build(a)).run_batched(INSTRS, WARMUP)
    });
    assert_eq!(
        parallel, sequential,
        "an 8-worker batched sweep diverged from the sequential streaming engine"
    );
}

/// `ASCC_CKPT_EVERY` semantics under batching: the hook fires at *exactly*
/// every `hook_every` global accesses even when that lands mid-drain, with
/// state flushed enough to snapshot.
#[test]
fn batched_hook_fires_at_exact_global_access_multiples() {
    let cfg = pressured_cfg();
    let policy = all_policies(&cfg).remove(6); // ASCC
    let mut sys = sys_for(&cfg, 0, policy);
    const EVERY: u64 = 7_001; // coprime to chunk and batch sizes
    let mut fired = 0u64;
    sys.try_run_batched(INSTRS, WARMUP, EVERY, |s| {
        fired += 1;
        assert_eq!(
            s.total_accesses(),
            fired * EVERY,
            "hook #{fired} fired off-cadence"
        );
        true
    })
    .expect("an always-continue hook cannot abort the run");
    assert!(
        fired >= 3,
        "run too short to exercise the cadence ({fired} hooks)"
    );
}

/// A run killed at a mid-batch checkpoint resumes bit-identically: abort
/// the batched run from its Nth hook (state exactly as a SIGKILL after the
/// Nth checkpoint write would leave on disk), restore a fresh system from
/// that snapshot and finish — same `RunResult`, same end snapshot.
#[test]
fn mid_batch_checkpoint_restores_bit_identically() {
    let cfg = pressured_cfg();
    for idx in 0..all_policies(&cfg).len() {
        let build = || all_policies(&cfg).remove(idx);
        let name = build().name().to_string();
        let mut straight = sys_for(&cfg, 0, build());
        let straight_result = straight.run_batched(INSTRS, WARMUP);
        let straight_end = straight.snapshot();

        let mut victim = sys_for(&cfg, 0, build());
        let mut ckpt = None;
        let mut fired = 0u64;
        let aborted = victim.try_run_batched(INSTRS, WARMUP, 7_001, |s| {
            fired += 1;
            ckpt = Some(s.snapshot());
            fired < 3
        });
        assert!(
            aborted.is_none(),
            "{name}: the aborting hook must kill the run"
        );
        let ckpt = ckpt.unwrap_or_else(|| panic!("{name}: no checkpoint captured"));

        let mut resumed = sys_for(&cfg, 0, build());
        resumed
            .restore(&ckpt)
            .unwrap_or_else(|e| panic!("{name}: restore: {e}"));
        let resumed_result = resumed.run_batched(INSTRS, WARMUP);
        assert_eq!(
            resumed_result, straight_result,
            "{name}: RunResult diverged after mid-batch restore"
        );
        assert_eq!(
            resumed.snapshot(),
            straight_end,
            "{name}: end snapshot diverged after mid-batch restore"
        );
    }
}

// ----- real SIGKILL + ASCC_RESUME=1, end to end through run_mix ----------

const CHILD_INSTRS: u64 = 400_000;
const CHILD_WARMUP: u64 = 50_000;

/// Child-mode entry, re-invoked from this same test binary (a no-op unless
/// `ASCC_BE_CHILD` is set): one `run_mix` under the env-driven
/// checkpointing knobs, its `RunResult` printed for byte comparison.
#[test]
fn sigkill_child_entry() {
    if std::env::var("ASCC_BE_CHILD").is_err() {
        return;
    }
    let cfg = pressured_cfg();
    let mix = &two_app_mixes()[6];
    let policy = all_policies(&cfg).remove(6); // ASCC
    let r = cmp_sim::run_mix(&cfg, mix, policy, CHILD_INSTRS, CHILD_WARMUP, SEED);
    println!("RESULT {r:?}");
}

/// The satellite regression: a checkpointed batched `run_mix` child is
/// SIGKILLed mid-batch; rerunning with `ASCC_RESUME=1` restores the
/// on-disk checkpoint and lands on the *byte-identical* result of an
/// uninterrupted run.
#[test]
fn sigkill_mid_batch_resumes_byte_identically() {
    use std::process::{Command, Stdio};
    let exe = std::env::current_exe().expect("test binary path");
    let dir = std::env::temp_dir().join(format!("ascc-batch-kill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dirs = dir.display().to_string();
    let child = |envs: &[(&str, &str)]| {
        let mut c = Command::new(&exe);
        c.args(["sigkill_child_entry", "--exact", "--nocapture"])
            .env("ASCC_BE_CHILD", "1")
            .env_remove("ASCC_CKPT_EVERY")
            .env_remove("ASCC_CKPT_DIR")
            .env_remove("ASCC_RESUME");
        for (k, v) in envs {
            c.env(k, v);
        }
        c
    };
    let result_line = |out: &std::process::Output| -> String {
        assert!(
            out.status.success(),
            "child failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        // With --nocapture the harness may glue its "test ... " prefix onto
        // the same line, so locate the marker anywhere in a line.
        let stdout = String::from_utf8_lossy(&out.stdout);
        stdout
            .lines()
            .find_map(|l| l.find("RESULT ").map(|at| l[at..].to_string()))
            .unwrap_or_else(|| {
                panic!(
                    "child printed no RESULT line\nstdout:\n{stdout}\nstderr:\n{}",
                    String::from_utf8_lossy(&out.stderr)
                )
            })
    };

    // 1. The uninterrupted reference (no checkpointing at all).
    let reference = result_line(&child(&[]).output().expect("reference child"));

    // 2. A checkpointed run, SIGKILLed as soon as a checkpoint lands on
    //    disk — i.e. mid-batch, a few thousand accesses into the run.
    let mut victim = child(&[("ASCC_CKPT_EVERY", "5000"), ("ASCC_CKPT_DIR", &dirs)])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("victim child");
    let has_snap = |d: &std::path::Path| {
        std::fs::read_dir(d)
            .ok()
            .into_iter()
            .flatten()
            .flatten()
            .any(|e| e.path().extension().is_some_and(|x| x == "snap"))
    };
    for _ in 0..6000 {
        if has_snap(&dir) || victim.try_wait().expect("victim poll").is_some() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    victim.kill().ok(); // SIGKILL on unix
    victim.wait().expect("victim reaped");
    assert!(
        has_snap(&dir),
        "victim left no checkpoint (finished or died before one landed)"
    );

    // 3. Resume from the on-disk checkpoint; must be byte-identical.
    let resumed_out = child(&[
        ("ASCC_CKPT_EVERY", "5000"),
        ("ASCC_CKPT_DIR", &dirs),
        ("ASCC_RESUME", "1"),
    ])
    .output()
    .expect("resumed child");
    assert!(
        String::from_utf8_lossy(&resumed_out.stderr).contains("[ckpt] resumed"),
        "resumed child did not restore the checkpoint"
    );
    assert_eq!(
        result_line(&resumed_out),
        reference,
        "resumed run diverged from the uninterrupted reference"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
