//! End-to-end behaviour of the policies under simulation: the mechanisms
//! the paper describes must be visible in the measured numbers.

use ascc::{AsccConfig, AvgccConfig};
use ascc_integration::small_config;
use cmp_cache::{CoreId, PrivateBaseline};
use cmp_sim::{run_mix, weighted_speedup_improvement, CmpSystem, SystemConfig};
use cmp_trace::{CoreWorkload, CpuModel, CyclicStream, WorkloadMix};

/// A hungry core (loop slightly bigger than its L2) beside an idle-ish one
/// (tiny loop): the canonical spill-receive scenario, downscaled.
fn hungry_plus_idle(cfg: &SystemConfig) -> Vec<CoreWorkload> {
    let cpu = CpuModel {
        mem_fraction: 0.25,
        base_cpi: 1.0,
        overlap: 1.0,
        store_fraction: 0.0,
    };
    // L2 is 64 kB: a 72 kB line-granular loop thrashes it completely.
    let hungry = CoreWorkload {
        label: "hungry".into(),
        cpu,
        stream: Box::new(CyclicStream::new(0, 72 << 10, 32, 0)),
    };
    let idle = CoreWorkload {
        label: "idle".into(),
        cpu,
        stream: Box::new(CyclicStream::new(1 << 40, 4 << 10, 32, 1)),
    };
    let _ = cfg;
    vec![hungry, idle]
}

#[test]
fn ascc_converts_memory_misses_into_remote_hits() {
    let cfg = small_config(2);
    let run = |policy: Box<dyn cmp_cache::LlcPolicy>| {
        let mut sys = CmpSystem::new(cfg.clone(), policy, hungry_plus_idle(&cfg));
        sys.run(400_000, 100_000)
    };
    let base = run(Box::new(PrivateBaseline::new()));
    let ascc = run(Box::new(
        AsccConfig::ascc(2, cfg.l2.sets(), cfg.l2.ways()).build(),
    ));
    assert_eq!(base.cores[0].l2_remote_hits, 0);
    assert!(ascc.spills + ascc.swaps > 0, "hungry core must spill");
    assert!(
        ascc.cores[0].l2_remote_hits > 1000,
        "spilled loop lines must be re-referenced remotely: {:?}",
        ascc.cores[0]
    );
    assert!(
        ascc.cores[0].l2_mem < base.cores[0].l2_mem,
        "memory misses must drop"
    );
    let ws = weighted_speedup_improvement(&ascc, &base);
    assert!(ws > 0.02, "spilling should pay off clearly, got {ws}");
    // The idle neighbour must not be wrecked.
    assert!(ascc.cores[1].cpi() < base.cores[1].cpi() * 1.1);
}

#[test]
fn sabip_fights_capacity_thrashing_without_receivers() {
    // Two hungry cores: nobody can receive, so ASCC's SABIP retains part of
    // each loop locally, while the plain baseline thrashes everything.
    let cfg = small_config(2);
    let cpu = CpuModel {
        mem_fraction: 0.25,
        base_cpi: 1.0,
        overlap: 1.0,
        store_fraction: 0.0,
    };
    let mk = || {
        vec![
            CoreWorkload {
                label: "hungry0".into(),
                cpu,
                stream: Box::new(CyclicStream::new(0, 72 << 10, 32, 0)),
            },
            CoreWorkload {
                label: "hungry1".into(),
                cpu,
                stream: Box::new(CyclicStream::new(1 << 40, 72 << 10, 32, 1)),
            },
        ]
    };
    let mut base_sys = CmpSystem::new(cfg.clone(), Box::new(PrivateBaseline::new()), mk());
    let base = base_sys.run(400_000, 100_000);
    let mut ascc_sys = CmpSystem::new(
        cfg.clone(),
        Box::new(AsccConfig::ascc(2, cfg.l2.sets(), cfg.l2.ways()).build()),
        mk(),
    );
    let ascc = ascc_sys.run(400_000, 100_000);
    let base_hits: u64 = base.cores.iter().map(|c| c.l2_local_hits).sum();
    let ascc_hits: u64 = ascc.cores.iter().map(|c| c.l2_local_hits).sum();
    assert!(
        ascc_hits > base_hits + 1000,
        "SABIP must retain part of the loops locally: {base_hits} -> {ascc_hits}"
    );
    assert!(weighted_speedup_improvement(&ascc, &base) > 0.05);
}

#[test]
fn avgcc_adapts_granularity_during_a_real_run() {
    let cfg = small_config(2);
    let mut avgcc = AvgccConfig::avgcc(2, cfg.l2.sets(), cfg.l2.ways());
    avgcc.epoch_accesses = 5_000; // downscaled epochs for a downscaled run
    let mut sys = CmpSystem::new(cfg.clone(), Box::new(avgcc.build()), hungry_plus_idle(&cfg));
    sys.run(400_000, 100_000);
    let snap = sys.policy().snapshot();
    assert_eq!(snap.ab_consistent, Some(true), "A/B counters diverged");
    assert!(
        snap.granularity_changes.unwrap_or(0) > 0,
        "granularity should adapt at least once"
    );
    // The idle receiver has spare capacity everywhere: it should have
    // refined towards fine-grain tracking.
    let idle = snap.core(CoreId(1)).expect("core 1 snapshot");
    assert!(idle.counters_in_use.expect("AVGCC reports counters") > 1);
}

#[test]
fn qos_avgcc_limits_degradation_on_hostile_mixes() {
    // Two streaming cores: spilling is pure overhead. QoS-AVGCC must stay
    // within a tight band of the baseline and not do worse than AVGCC.
    let cfg = small_config(2);
    let cpu = CpuModel {
        mem_fraction: 0.3,
        base_cpi: 1.0,
        overlap: 0.5,
        store_fraction: 0.1,
    };
    let mk = || {
        vec![
            CoreWorkload {
                label: "stream0".into(),
                cpu,
                stream: Box::new(CyclicStream::new(0, 8 << 20, 32, 0)),
            },
            CoreWorkload {
                label: "stream1".into(),
                cpu,
                stream: Box::new(CyclicStream::new(1 << 40, 8 << 20, 32, 1)),
            },
        ]
    };
    let sets = cfg.l2.sets();
    let ways = cfg.l2.ways();
    let run = |policy: Box<dyn cmp_cache::LlcPolicy>| {
        let mut sys = CmpSystem::new(cfg.clone(), policy, mk());
        sys.run(300_000, 80_000)
    };
    let base = run(Box::new(PrivateBaseline::new()));
    let mut qcfg = AvgccConfig::qos_avgcc(2, sets, ways);
    qcfg.epoch_accesses = 5_000;
    qcfg.qos_epoch_cycles = 20_000;
    let qos = run(Box::new(qcfg.build()));
    let ws = weighted_speedup_improvement(&qos, &base);
    assert!(ws > -0.02, "QoS must bound the damage, got {ws}");
}

mod frontier {
    //! Characterization of the post-2012 frontier policies: exact scripted
    //! access sequences through the full engine (L1 filtering, MESI fabric,
    //! spill allocator) with the policy-visible state pinned afterwards.

    use ascc_integration::diff::{self, DiffCase, DiffOp, DiffPolicy};
    use cmp_cache::{CoreId, SetIdx};
    use cmp_coherence::FabricKind;
    use cmp_sim::CmpSystem;

    /// 2 cores, 4 L2 sets x `ways` (L1 is the harness-fixed tiny one):
    /// lines 0/4/8/12/16 all collide in L2 set 0 and the same L1 set, so
    /// the L1 filter only passes what its 2 ways cannot hold.
    fn scripted(policy: DiffPolicy, ways: u16, script: &[(u8, u32)]) -> CmpSystem {
        let case = DiffCase {
            cores: 2,
            l2_sets_log2: 2,
            l2_ways: ways,
            migrate: true,
            // Every step must issue exactly one scripted access (a higher
            // divisor interleaves non-memory instructions).
            mem_q: 1,
            check_every: 1,
            fabric: FabricKind::Directory,
            policy,
            ops: script
                .iter()
                .map(|&(core, line)| DiffOp {
                    core,
                    line,
                    store: false,
                })
                .collect(),
        };
        let mut sys = diff::build_real(&case);
        for op in &case.ops {
            sys.step(op.core as usize);
        }
        sys
    }

    #[test]
    fn arc_adapts_p_on_ghost_hits() {
        // 4-way set: 0,4,8 fill T1; re-touching 0 (evicted from the 2-way
        // L1 by then) is an L2 *hit* that promotes it to T2, dropping
        // |T1| below capacity so later T1 evictions start ghosting into
        // B1. The touches of 4 and 8 after their evictions are B1 ghost
        // hits (p: 0 -> 1 -> 2) whose refills land in T2; growing T2
        // forces a T2 eviction into B2, and the final touch of 0 is a B2
        // ghost hit that pulls p back down to 1.
        let sys = scripted(
            DiffPolicy::Arc,
            4,
            &[
                (0, 0),
                (0, 4),
                (0, 8),
                (0, 0),
                (0, 12),
                (0, 16),
                (0, 4),
                (0, 8),
                (0, 0),
            ],
        );
        let p = sys
            .policy()
            .as_any()
            .downcast_ref::<ascc::ArcPolicy>()
            .expect("ARC policy");
        assert_eq!(p.ghost_hits(), (2, 1), "two B1 hits then one B2 hit");
        assert_eq!(
            p.p_of(CoreId(0), SetIdx(0)),
            1,
            "p grew to 2, B2 hit shrank it"
        );
        assert_eq!(
            p.t2_mask(CoreId(0), SetIdx(0)).count_ones(),
            3,
            "every ghost-hit refill lands in T2"
        );
        assert_eq!(
            p.ghosts(CoreId(0), SetIdx(0)),
            (vec![12], vec![]),
            "the ghost hits consumed their entries; only the last T1 eviction remains"
        );
        // Untouched sets keep the cold defaults.
        assert_eq!(p.p_of(CoreId(0), SetIdx(1)), 0);
        assert_eq!(p.ghosts(CoreId(0), SetIdx(1)), (vec![], vec![]));
    }

    #[test]
    fn tinylfu_doorkeeper_admission_and_sketch_reset() {
        // Three warm lines cycle through L2 set 0 building sketch weight
        // (fills into invalid ways admit unconditionally); the cold line 12
        // then attempts a fill with doorkeeper-only frequency 1 against a
        // warm victim and is rejected. Note the feedback loop: once
        // rejections keep the warm pair resident, their accesses turn into
        // L1 hits and only the rejected lines keep feeding the sketch —
        // still enough observations to fire the period-16 halving reset.
        let mut script: Vec<(u8, u32)> = Vec::new();
        for _ in 0..12 {
            script.extend([(0, 0), (0, 4), (0, 8)]);
        }
        script.push((0, 12));
        script.extend([(0, 0), (0, 4), (0, 8)]);
        script.push((0, 12));
        let sys = scripted(
            DiffPolicy::TinyLfu {
                width: 64,
                depth: 4,
                sample_period: 16,
            },
            2,
            &script,
        );
        let p = sys
            .policy()
            .as_any()
            .downcast_ref::<ascc::TinyLfuPolicy>()
            .expect("TinyLFU policy");
        assert!(p.admissions() > 0, "cold-start fills must admit");
        assert!(
            p.rejections() > 0,
            "the cold line must lose the frequency duel against warm victims"
        );
        assert!(
            p.resets() >= 1,
            "sample period 16 must have fired: {}",
            p.resets()
        );
        assert!(
            p.samples() < 16,
            "samples counter rewinds on every reset, got {}",
            p.samples()
        );
        assert!(
            p.estimate(0u64.into()) > p.estimate(20u64.into()),
            "warm line must out-score a never-seen line"
        );
    }

    #[test]
    fn rdcb_copy_back_is_gated_by_the_reuse_distance_threshold() {
        // A 4-line loop fits the 4-way set exactly: after the cold fills,
        // every lap is all L2 hits, draining the set's SSL so core 0 stays
        // a non-spiller (base ASCC would just drop the victim). The
        // injected 5th line then evicts a clean line with a recorded
        // reuse distance of ~4-5 — exactly the case the predictor rescues
        // by copying it to the idle peer.
        let mut script: Vec<(u8, u32)> = Vec::new();
        for round in 0..10 {
            script.extend([(0, 0), (0, 4), (0, 8), (0, 12)]);
            if round >= 2 && round % 2 == 0 {
                script.push((0, 16));
            }
        }
        let run = |threshold: u64| {
            let sys = scripted(
                DiffPolicy::Rdcb {
                    entries: 64,
                    threshold,
                    swap: false,
                    seed: 7,
                },
                4,
                &script,
            );
            let copy_backs = sys
                .policy()
                .as_any()
                .downcast_ref::<ascc::RdcbPolicy>()
                .expect("RD-CB policy")
                .copy_backs();
            (copy_backs, sys.lifetime_result().spills)
        };
        let (hot, spills) = run(64);
        assert!(hot > 0, "short-distance clean victims must be copied back");
        assert!(
            spills >= hot,
            "every copy-back rides the spill path: {hot} copy-backs, {spills} spills"
        );
        // Distances are always >= 1, so a zero threshold disables the
        // mechanism entirely and the policy degrades to plain ASCC.
        let (cold, _) = run(0);
        assert_eq!(cold, 0, "threshold 0 must never copy back");
    }
}

#[test]
fn two_app_mix_improvements_are_reproducible() {
    let cfg = small_config(2);
    let mix = WorkloadMix::new(vec![
        cmp_trace::SpecBench::Omnetpp,
        cmp_trace::SpecBench::Namd,
    ]);
    let go = || {
        let base = run_mix(
            &cfg,
            &mix,
            Box::new(PrivateBaseline::new()),
            200_000,
            50_000,
            1,
        );
        let ascc = run_mix(
            &cfg,
            &mix,
            Box::new(AsccConfig::ascc(2, cfg.l2.sets(), cfg.l2.ways()).build()),
            200_000,
            50_000,
            1,
        );
        weighted_speedup_improvement(&ascc, &base)
    };
    let a = go();
    let b = go();
    assert_eq!(a, b, "identical seeds must give identical improvements");
}
