//! End-to-end behaviour of the policies under simulation: the mechanisms
//! the paper describes must be visible in the measured numbers.

use ascc::{AsccConfig, AvgccConfig};
use ascc_integration::small_config;
use cmp_cache::{CoreId, PrivateBaseline};
use cmp_sim::{run_mix, weighted_speedup_improvement, CmpSystem, SystemConfig};
use cmp_trace::{CoreWorkload, CpuModel, CyclicStream, WorkloadMix};

/// A hungry core (loop slightly bigger than its L2) beside an idle-ish one
/// (tiny loop): the canonical spill-receive scenario, downscaled.
fn hungry_plus_idle(cfg: &SystemConfig) -> Vec<CoreWorkload> {
    let cpu = CpuModel {
        mem_fraction: 0.25,
        base_cpi: 1.0,
        overlap: 1.0,
        store_fraction: 0.0,
    };
    // L2 is 64 kB: a 72 kB line-granular loop thrashes it completely.
    let hungry = CoreWorkload {
        label: "hungry".into(),
        cpu,
        stream: Box::new(CyclicStream::new(0, 72 << 10, 32, 0)),
    };
    let idle = CoreWorkload {
        label: "idle".into(),
        cpu,
        stream: Box::new(CyclicStream::new(1 << 40, 4 << 10, 32, 1)),
    };
    let _ = cfg;
    vec![hungry, idle]
}

#[test]
fn ascc_converts_memory_misses_into_remote_hits() {
    let cfg = small_config(2);
    let run = |policy: Box<dyn cmp_cache::LlcPolicy>| {
        let mut sys = CmpSystem::new(cfg.clone(), policy, hungry_plus_idle(&cfg));
        sys.run(400_000, 100_000)
    };
    let base = run(Box::new(PrivateBaseline::new()));
    let ascc = run(Box::new(
        AsccConfig::ascc(2, cfg.l2.sets(), cfg.l2.ways()).build(),
    ));
    assert_eq!(base.cores[0].l2_remote_hits, 0);
    assert!(ascc.spills + ascc.swaps > 0, "hungry core must spill");
    assert!(
        ascc.cores[0].l2_remote_hits > 1000,
        "spilled loop lines must be re-referenced remotely: {:?}",
        ascc.cores[0]
    );
    assert!(
        ascc.cores[0].l2_mem < base.cores[0].l2_mem,
        "memory misses must drop"
    );
    let ws = weighted_speedup_improvement(&ascc, &base);
    assert!(ws > 0.02, "spilling should pay off clearly, got {ws}");
    // The idle neighbour must not be wrecked.
    assert!(ascc.cores[1].cpi() < base.cores[1].cpi() * 1.1);
}

#[test]
fn sabip_fights_capacity_thrashing_without_receivers() {
    // Two hungry cores: nobody can receive, so ASCC's SABIP retains part of
    // each loop locally, while the plain baseline thrashes everything.
    let cfg = small_config(2);
    let cpu = CpuModel {
        mem_fraction: 0.25,
        base_cpi: 1.0,
        overlap: 1.0,
        store_fraction: 0.0,
    };
    let mk = || {
        vec![
            CoreWorkload {
                label: "hungry0".into(),
                cpu,
                stream: Box::new(CyclicStream::new(0, 72 << 10, 32, 0)),
            },
            CoreWorkload {
                label: "hungry1".into(),
                cpu,
                stream: Box::new(CyclicStream::new(1 << 40, 72 << 10, 32, 1)),
            },
        ]
    };
    let mut base_sys = CmpSystem::new(cfg.clone(), Box::new(PrivateBaseline::new()), mk());
    let base = base_sys.run(400_000, 100_000);
    let mut ascc_sys = CmpSystem::new(
        cfg.clone(),
        Box::new(AsccConfig::ascc(2, cfg.l2.sets(), cfg.l2.ways()).build()),
        mk(),
    );
    let ascc = ascc_sys.run(400_000, 100_000);
    let base_hits: u64 = base.cores.iter().map(|c| c.l2_local_hits).sum();
    let ascc_hits: u64 = ascc.cores.iter().map(|c| c.l2_local_hits).sum();
    assert!(
        ascc_hits > base_hits + 1000,
        "SABIP must retain part of the loops locally: {base_hits} -> {ascc_hits}"
    );
    assert!(weighted_speedup_improvement(&ascc, &base) > 0.05);
}

#[test]
fn avgcc_adapts_granularity_during_a_real_run() {
    let cfg = small_config(2);
    let mut avgcc = AvgccConfig::avgcc(2, cfg.l2.sets(), cfg.l2.ways());
    avgcc.epoch_accesses = 5_000; // downscaled epochs for a downscaled run
    let mut sys = CmpSystem::new(cfg.clone(), Box::new(avgcc.build()), hungry_plus_idle(&cfg));
    sys.run(400_000, 100_000);
    let snap = sys.policy().snapshot();
    assert_eq!(snap.ab_consistent, Some(true), "A/B counters diverged");
    assert!(
        snap.granularity_changes.unwrap_or(0) > 0,
        "granularity should adapt at least once"
    );
    // The idle receiver has spare capacity everywhere: it should have
    // refined towards fine-grain tracking.
    let idle = snap.core(CoreId(1)).expect("core 1 snapshot");
    assert!(idle.counters_in_use.expect("AVGCC reports counters") > 1);
}

#[test]
fn qos_avgcc_limits_degradation_on_hostile_mixes() {
    // Two streaming cores: spilling is pure overhead. QoS-AVGCC must stay
    // within a tight band of the baseline and not do worse than AVGCC.
    let cfg = small_config(2);
    let cpu = CpuModel {
        mem_fraction: 0.3,
        base_cpi: 1.0,
        overlap: 0.5,
        store_fraction: 0.1,
    };
    let mk = || {
        vec![
            CoreWorkload {
                label: "stream0".into(),
                cpu,
                stream: Box::new(CyclicStream::new(0, 8 << 20, 32, 0)),
            },
            CoreWorkload {
                label: "stream1".into(),
                cpu,
                stream: Box::new(CyclicStream::new(1 << 40, 8 << 20, 32, 1)),
            },
        ]
    };
    let sets = cfg.l2.sets();
    let ways = cfg.l2.ways();
    let run = |policy: Box<dyn cmp_cache::LlcPolicy>| {
        let mut sys = CmpSystem::new(cfg.clone(), policy, mk());
        sys.run(300_000, 80_000)
    };
    let base = run(Box::new(PrivateBaseline::new()));
    let mut qcfg = AvgccConfig::qos_avgcc(2, sets, ways);
    qcfg.epoch_accesses = 5_000;
    qcfg.qos_epoch_cycles = 20_000;
    let qos = run(Box::new(qcfg.build()));
    let ws = weighted_speedup_improvement(&qos, &base);
    assert!(ws > -0.02, "QoS must bound the damage, got {ws}");
}

#[test]
fn two_app_mix_improvements_are_reproducible() {
    let cfg = small_config(2);
    let mix = WorkloadMix::new(vec![
        cmp_trace::SpecBench::Omnetpp,
        cmp_trace::SpecBench::Namd,
    ]);
    let go = || {
        let base = run_mix(
            &cfg,
            &mix,
            Box::new(PrivateBaseline::new()),
            200_000,
            50_000,
            1,
        );
        let ascc = run_mix(
            &cfg,
            &mix,
            Box::new(AsccConfig::ascc(2, cfg.l2.sets(), cfg.l2.ways()).build()),
            200_000,
            50_000,
            1,
        );
        weighted_speedup_improvement(&ascc, &base)
    };
    let a = go();
    let b = go();
    assert_eq!(a, b, "identical seeds must give identical improvements");
}
