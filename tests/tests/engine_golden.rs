//! Golden bit-identity test for the simulation engine.
//!
//! The SoA cache arena (PR 2) replaced the seed's pointer-per-set layout.
//! These goldens were captured from the seed engine *before* that refactor;
//! the test asserts that a short run of every policy still produces exactly
//! the same `RunResult` — down to the bit pattern of the cycle counts — so
//! any layout or recency-encoding change that alters simulated behaviour is
//! caught immediately.
//!
//! Regenerate (only when a *deliberate* behaviour change is made) with:
//! `ASCC_BLESS=1 cargo test -p ascc-integration --test engine_golden`.

use ascc::{ArcConfig, AsccConfig, AvgccConfig, RdcbConfig, TinyLfuConfig};
use cmp_cache::{CacheGeometry, LlcPolicy, PrivateBaseline};
use cmp_coherence::FabricKind;
use cmp_json::Value;
use cmp_sim::{run_mix, RunResult, SystemConfig};
use cmp_trace::{mixes_for, two_app_mixes};
use spill_baselines::{DsrConfig, DsrDipPolicy, EccConfig};

const INSTRS: u64 = 80_000;
const WARMUP: u64 = 20_000;
const SEED: u64 = 7;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/engine_bit_identity.json")
}

/// Small 2-core system: the 16 kB L2 forces real evictions and spills so
/// every policy exercises its victim/spill/insertion paths.
fn cfg() -> SystemConfig {
    let mut cfg = SystemConfig::table2(2);
    cfg.l1 = CacheGeometry::from_capacity(1 << 10, 2, 32).unwrap();
    cfg.l2 = CacheGeometry::from_capacity(16 << 10, 4, 32).unwrap();
    cfg
}

fn policies(cfg: &SystemConfig) -> Vec<(&'static str, Box<dyn LlcPolicy>)> {
    let (cores, sets, ways) = (cfg.cores, cfg.l2.sets(), cfg.l2.ways());
    vec![
        (
            "baseline",
            Box::new(PrivateBaseline::new()) as Box<dyn LlcPolicy>,
        ),
        ("DSR", Box::new(DsrConfig::dsr(cores, sets).build())),
        ("DSR+DIP", Box::new(DsrDipPolicy::new(cores, sets))),
        ("ECC", Box::new(EccConfig::ecc(cores, ways).build())),
        (
            "ASCC",
            Box::new(AsccConfig::ascc(cores, sets, ways).build()),
        ),
        (
            "AVGCC",
            Box::new(AvgccConfig::avgcc(cores, sets, ways).build()),
        ),
        (
            "QoS-AVGCC",
            Box::new(AvgccConfig::qos_avgcc(cores, sets, ways).build()),
        ),
        ("ARC", Box::new(ArcConfig::new(cores, sets, ways).build())),
        (
            "TinyLFU",
            Box::new(TinyLfuConfig::for_geometry(cores, sets, ways).build()),
        ),
        (
            "RD-CB",
            Box::new(RdcbConfig::new(cores, sets, ways).build()),
        ),
    ]
}

/// Canonical JSON for a run: every counter exactly, cycles as IEEE-754 bit
/// patterns (hex strings) so nothing is lost to number formatting.
fn run_to_json(r: &RunResult) -> Value {
    Value::object()
        .insert("policy", r.policy.clone())
        .insert(
            "cores",
            Value::Array(
                r.cores
                    .iter()
                    .map(|c| {
                        Value::object()
                            .insert("label", c.label.clone())
                            .insert("instrs", c.instrs as f64)
                            .insert("cycles_bits", format!("{:016x}", c.cycles.to_bits()))
                            .insert("l2_accesses", c.l2_accesses as f64)
                            .insert("l2_local_hits", c.l2_local_hits as f64)
                            .insert("l2_remote_hits", c.l2_remote_hits as f64)
                            .insert("l2_mem", c.l2_mem as f64)
                            .insert("offchip_fetches", c.offchip_fetches as f64)
                            .insert("writebacks", c.writebacks as f64)
                            .insert("l1_accesses", c.l1_accesses as f64)
                            .insert("l1_hits", c.l1_hits as f64)
                    })
                    .collect(),
            ),
        )
        .insert("spills", r.spills as f64)
        .insert("swaps", r.swaps as f64)
        .insert("spill_hits", r.spill_hits as f64)
}

fn capture() -> Value {
    let cfg = cfg();
    let mix = &two_app_mixes()[0];
    let runs: Vec<Value> = policies(&cfg)
        .into_iter()
        .map(|(name, policy)| {
            let r = run_mix(&cfg, mix, policy, INSTRS, WARMUP, SEED);
            Value::object()
                .insert("name", name)
                .insert("run", run_to_json(&r))
        })
        .collect();
    Value::object()
        .insert("instrs", INSTRS as f64)
        .insert("warmup", WARMUP as f64)
        .insert("seed", SEED as f64)
        .insert("mix", mix.name.clone())
        .insert("runs", Value::Array(runs))
}

/// The crash-resume invariant against the goldens: a run snapshotted and
/// restored mid-flight lands on exactly the same `RunResult` as the
/// straight run that the goldens pin — so a checkpointed sweep can never
/// drift off the blessed numbers.
#[test]
fn mid_run_restore_matches_golden_runs() {
    use cmp_sim::{mix_sources, CmpSystem};
    let cfg = cfg();
    let mix = &two_app_mixes()[0];
    for ((name, a), (_, b)) in policies(&cfg).into_iter().zip(policies(&cfg)) {
        let mut straight = CmpSystem::from_sources(cfg.clone(), a, mix_sources(mix, SEED));
        let mut mid = None;
        let mut accesses = 0u64;
        let straight_result = straight.run_with_hook(INSTRS, WARMUP, |s| {
            accesses += 1;
            if accesses == 11_003 {
                mid = Some(s.snapshot());
            }
        });
        let mid = mid.unwrap_or_else(|| panic!("{name}: run shorter than capture point"));
        let mut resumed = CmpSystem::from_sources(cfg.clone(), b, mix_sources(mix, SEED));
        resumed
            .restore(&mid)
            .unwrap_or_else(|e| panic!("{name}: restore: {e}"));
        assert_eq!(
            resumed.run(INSTRS, WARMUP),
            straight_result,
            "{name}: resumed run diverged from the golden-pinned straight run"
        );
    }
}

// ----- wide-engine goldens (8 and 16 cores) ------------------------------

const WIDE_INSTRS: u64 = 30_000;
const WIDE_WARMUP: u64 = 10_000;

fn wide_golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/engine_wide_identity.json")
}

/// The 2-core golden config widened: same small caches so the cluster-aware
/// spill paths (>8 cores route ties to the spiller's cluster) see real
/// pressure at every width.
fn wide_cfg(cores: usize) -> SystemConfig {
    let mut wide = SystemConfig::table2(cores);
    wide.l1 = CacheGeometry::from_capacity(1 << 10, 2, 32).unwrap();
    wide.l2 = CacheGeometry::from_capacity(16 << 10, 4, 32).unwrap();
    wide
}

fn capture_wide() -> Value {
    let widths: Vec<Value> = [8usize, 16]
        .iter()
        .map(|&cores| {
            let cfg = wide_cfg(cores);
            let mix = &mixes_for(cores)[0];
            let runs: Vec<Value> = policies(&cfg)
                .into_iter()
                .map(|(name, policy)| {
                    let r = run_mix(&cfg, mix, policy, WIDE_INSTRS, WIDE_WARMUP, SEED);
                    Value::object()
                        .insert("name", name)
                        .insert("run", run_to_json(&r))
                })
                .collect();
            Value::object()
                .insert("cores", cores as f64)
                .insert("mix", mix.name.clone())
                .insert("runs", Value::Array(runs))
        })
        .collect();
    Value::object()
        .insert("instrs", WIDE_INSTRS as f64)
        .insert("warmup", WIDE_WARMUP as f64)
        .insert("seed", SEED as f64)
        .insert("widths", Value::Array(widths))
}

/// Pins every policy at 8 and 16 cores, and asserts the broadcast fabric
/// lands on exactly the pinned (directory-fabric) numbers at both widths —
/// the O(sharers) directory must stay invisible to architectural state at
/// scale, not just in the ≤8-core differential cases.
#[test]
fn wide_engine_matches_goldens_and_fabrics_agree() {
    for cores in [8usize, 16] {
        let dir_cfg = wide_cfg(cores);
        let bcast_cfg = wide_cfg(cores).with_fabric(FabricKind::Broadcast);
        let mix = &mixes_for(cores)[0];
        for ((name, on_dir), (_, on_bcast)) in
            policies(&dir_cfg).into_iter().zip(policies(&bcast_cfg))
        {
            let d = run_mix(&dir_cfg, mix, on_dir, WIDE_INSTRS, WIDE_WARMUP, SEED);
            let b = run_mix(&bcast_cfg, mix, on_bcast, WIDE_INSTRS, WIDE_WARMUP, SEED);
            assert_eq!(d, b, "{name} at {cores} cores: fabrics diverged");
        }
    }

    let got = capture_wide().pretty();
    let path = wide_golden_path();
    if std::env::var("ASCC_BLESS").is_ok_and(|v| v != "0") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with ASCC_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "wide-engine output diverged from the goldens; if the behaviour \
         change is deliberate, regenerate with ASCC_BLESS=1"
    );
}

#[test]
fn engine_matches_seed_goldens() {
    let got = capture().pretty();
    let path = golden_path();
    if std::env::var("ASCC_BLESS").is_ok_and(|v| v != "0") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with ASCC_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "engine output diverged from the seed goldens; if the behaviour \
         change is deliberate, regenerate with ASCC_BLESS=1"
    );
}
