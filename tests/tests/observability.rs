//! The observability layer end-to-end: `NullProbe` transparency, event
//! reconciliation against lifetime counters, and epoch snapshots.

use ascc::{AsccConfig, AvgccConfig};
use ascc_integration::small_config;
use cmp_cache::{LlcPolicy, NullProbe, PrivateBaseline};
use cmp_sim::{mix_workloads, CmpSystem, EpochRecorder, SystemConfig};
use cmp_trace::{CoreWorkload, CpuModel, CyclicStream, SpecBench, WorkloadMix};

/// A hungry core beside an idle one: guarantees spill traffic under ASCC.
fn hungry_plus_idle() -> Vec<CoreWorkload> {
    let cpu = CpuModel {
        mem_fraction: 0.25,
        base_cpi: 1.0,
        overlap: 1.0,
        store_fraction: 0.0,
    };
    vec![
        CoreWorkload {
            label: "hungry".into(),
            cpu,
            stream: Box::new(CyclicStream::new(0, 72 << 10, 32, 0)),
        },
        CoreWorkload {
            label: "idle".into(),
            cpu,
            stream: Box::new(CyclicStream::new(1 << 40, 4 << 10, 32, 1)),
        },
    ]
}

fn policies(cfg: &SystemConfig) -> Vec<Box<dyn LlcPolicy>> {
    let (cores, sets, ways) = (cfg.cores, cfg.l2.sets(), cfg.l2.ways());
    vec![
        Box::new(PrivateBaseline::new()),
        Box::new(AsccConfig::ascc(cores, sets, ways).build()),
        Box::new(AvgccConfig::avgcc(cores, sets, ways).build()),
    ]
}

#[test]
fn null_probe_runs_are_bit_identical_to_probe_free_runs() {
    // The observability layer must be invisible when unobserved: a system
    // built through `with_probe(NullProbe)` must produce the *same*
    // `RunResult`, field for field, as the plain constructor.
    let cfg = small_config(2);
    for mk in [0usize, 1, 2] {
        let plain = {
            let policy = policies(&cfg).swap_remove(mk);
            let mut sys = CmpSystem::new(cfg.clone(), policy, hungry_plus_idle());
            sys.run(150_000, 30_000)
        };
        let probed = {
            let policy = policies(&cfg).swap_remove(mk);
            let mut sys =
                CmpSystem::with_probe(cfg.clone(), policy, hungry_plus_idle(), NullProbe, 0);
            sys.run(150_000, 30_000)
        };
        assert_eq!(plain, probed, "policy #{mk} diverged under NullProbe");
    }
}

#[test]
fn recorder_totals_reconcile_with_lifetime_counters() {
    // Every counter the simulator keeps must be derivable from the event
    // stream: run a store-carrying SPEC mix and check the recorder's
    // totals against `lifetime_result()` (which, like the probe, counts
    // from cycle zero with no warm-up subtraction).
    let cfg = small_config(2);
    let mix = WorkloadMix::new(vec![SpecBench::Omnetpp, SpecBench::Namd]);
    let policy = Box::new(AsccConfig::ascc(2, cfg.l2.sets(), cfg.l2.ways()).build());
    let mut rec = EpochRecorder::new(2);
    let mut sys = CmpSystem::with_probe(cfg.clone(), policy, mix_workloads(&mix, 1), &mut rec, 0);
    sys.run(200_000, 50_000);
    let life = sys.lifetime_result();
    drop(sys);
    rec.finish();
    let t = rec.totals();
    for (i, c) in life.cores.iter().enumerate() {
        assert_eq!(t.local_hits[i], c.l2_local_hits, "core {i} local hits");
        assert_eq!(t.remote_hits[i], c.l2_remote_hits, "core {i} remote hits");
        assert_eq!(t.mem_fetches[i], c.l2_mem, "core {i} memory fetches");
        assert_eq!(t.writebacks[i], c.writebacks, "core {i} writebacks");
        assert_eq!(
            t.local_hits[i] + t.misses[i],
            c.l2_accesses,
            "core {i} hit/miss events partition L2 accesses"
        );
    }
    assert_eq!(t.spills(), life.spills, "spill matrix sum");
    assert_eq!(t.swaps.iter().sum::<u64>(), life.swaps, "swaps");
    // The mix carries stores, so the writeback check had teeth.
    assert!(life.cores.iter().any(|c| c.writebacks > 0));
}

#[test]
fn epochs_carry_policy_snapshots_with_set_roles() {
    // With a nonzero epoch length the recorder splits the run into epochs,
    // each closed with an ASCC snapshot whose SSL role histogram covers
    // every set; the spill-flow matrix shows hungry → idle traffic.
    let cfg = small_config(2);
    let policy = Box::new(AsccConfig::ascc(2, cfg.l2.sets(), cfg.l2.ways()).build());
    let mut rec = EpochRecorder::new(2);
    let mut sys = CmpSystem::with_probe(cfg.clone(), policy, hungry_plus_idle(), &mut rec, 5_000);
    sys.run(200_000, 50_000);
    drop(sys);
    rec.finish();
    assert!(rec.epochs().len() >= 4, "got {} epochs", rec.epochs().len());
    for e in rec.epochs().iter().rev().skip(1).rev() {
        let snap = e.snapshot.as_ref().expect("closed epochs carry snapshots");
        assert_eq!(snap.policy, "ASCC");
        for pc in &snap.per_core {
            let roles = pc.roles.expect("ASCC exposes SSL roles");
            assert_eq!(roles.total(), cfg.l2.sets());
        }
    }
    assert!(
        rec.totals().spill_matrix[0][1] > 0,
        "hungry core must spill into the idle one: {:?}",
        rec.totals().spill_matrix
    );
    assert_eq!(rec.totals().spill_matrix[1][0], 0, "idle core never spills");
}

#[test]
fn avgcc_epoch_snapshots_expose_granularity_trajectory() {
    let cfg = small_config(2);
    let mut acfg = AvgccConfig::avgcc(2, cfg.l2.sets(), cfg.l2.ways());
    acfg.epoch_accesses = 5_000;
    let mut rec = EpochRecorder::new(2);
    let mut sys = CmpSystem::with_probe(
        cfg.clone(),
        Box::new(acfg.build()),
        hungry_plus_idle(),
        &mut rec,
        5_000,
    );
    sys.run(300_000, 50_000);
    drop(sys);
    rec.finish();
    let granularities: Vec<Vec<u8>> = rec
        .epochs()
        .iter()
        .filter_map(|e| e.snapshot.as_ref())
        .map(|s| {
            s.per_core
                .iter()
                .map(|c| c.granularity_log2.expect("AVGCC exposes granularity"))
                .collect()
        })
        .collect();
    assert!(!granularities.is_empty());
    // AVGCC regranularizes during the run, and the recorder saw the events.
    let distinct: std::collections::BTreeSet<&Vec<u8>> = granularities.iter().collect();
    assert!(distinct.len() > 1, "granularity never moved: {distinct:?}");
    assert!(rec.totals().regranularizations.iter().sum::<u64>() > 0);
}
