//! Statistical check of SABIP insertion (§3.2): once a spiller set fails
//! to find a receiver, demand fills go to LRU-1 except for an ε = 1/32
//! trickle of MRU insertions, and the set reverts to pure MRU insertion
//! as soon as its SSL counter drops back below K.

use ascc::AsccConfig;
use cmp_cache::{AccessOutcome, CoreId, InsertPos, LlcPolicy, SetIdx, SpillDecision, SpillVictim};

const CORE: CoreId = CoreId(0);
const SET: SetIdx = SetIdx(0);

/// A single-core ASCC policy: its spiller sets can never find a receiver,
/// so the capacity policy (SABIP) is guaranteed to activate.
fn policy() -> ascc::AsccPolicy {
    AsccConfig::ascc(1, 16, 8).build()
}

/// Misses until the set's SSL counter saturates and the set is a spiller,
/// then a failed spill to arm SABIP.
fn arm_sabip(p: &mut ascc::AsccPolicy) {
    for _ in 0..16 {
        p.record_access(CORE, SET, AccessOutcome::Miss);
    }
    assert_eq!(
        p.spill_decision(CORE, SET, SpillVictim::default()),
        SpillDecision::NoCandidate,
        "a saturated set with no peers must fail to spill"
    );
    assert!(p.in_capacity_mode(CORE, SET));
}

#[test]
fn sabip_mru_rate_is_epsilon() {
    let mut p = policy();
    arm_sabip(&mut p);

    const DRAWS: u32 = 32_768;
    let mut mru = 0u32;
    for _ in 0..DRAWS {
        match p.demand_insert_pos(CORE, SET) {
            InsertPos::Mru => mru += 1,
            InsertPos::LruMinus1 => {}
            other => panic!("SABIP must insert at MRU or LRU-1, got {other:?}"),
        }
    }
    // ε = 1/32 over 32768 Bernoulli draws: mean 1024, σ ≈ 31.5. The seed
    // is fixed so this is deterministic; the ±150 band (≈ ±4.8σ) documents
    // that the draw really is an unbiased ε-test, not a counter.
    assert!(
        (874..=1174).contains(&mru),
        "MRU insertions {mru} outside 1024 ± 150 for epsilon = 1/32"
    );
}

#[test]
fn sabip_reverts_to_mru_when_ssl_drops_below_k() {
    let mut p = policy();
    arm_sabip(&mut p);

    // Hits decrement the SSL counter by ONE each; the counter saturated at
    // (2K-1)<<3 = 120 and K<<3 = 64, so after 8 hits it falls below K and
    // §3.2 requires the set to leave capacity mode.
    for i in 0..8 {
        assert!(
            p.in_capacity_mode(CORE, SET),
            "still at or above K after {i} hits"
        );
        p.record_access(
            CORE,
            SET,
            AccessOutcome::Hit {
                spilled: false,
                depth: 0,
            },
        );
    }
    assert!(
        !p.in_capacity_mode(CORE, SET),
        "capacity mode must clear once SSL < K"
    );
    for _ in 0..256 {
        assert_eq!(
            p.demand_insert_pos(CORE, SET),
            InsertPos::Mru,
            "after reverting, every demand fill goes to MRU"
        );
    }
}
