#!/usr/bin/env bash
# HTTP smoke against the release ascc_serve daemon, driven by plain curl:
# boot on an ephemeral port, check /healthz, round-trip /config, run a
# quick fig08 sweep job to completion, scrape /metrics, shut down clean.
#
# Usage: scripts/serve_smoke.sh   (from the repo root, after
#        `cargo build --release -p ascc-bench --bins`)
set -euo pipefail

BIN=${ASCC_SERVE_BIN:-target/release/ascc_serve}
[ -x "$BIN" ] && [ ! -d "$BIN" ] || { echo "missing $BIN — build with: cargo build --release -p ascc-bench --bins" >&2; exit 1; }

WORK=$(mktemp -d)
LOG="$WORK/serve.log"
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# Pin the scale so the job finishes in seconds.
export ASCC_QUICK=1 ASCC_INSTRS=40000 ASCC_WARMUP=10000 ASCC_SEED=42

"$BIN" --addr 127.0.0.1:0 --root "$WORK/jobs" >"$LOG" 2>&1 &
SERVE_PID=$!

# The daemon announces its ephemeral address on stdout.
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#^ascc-serve listening on http://##p' "$LOG" | head -n1)
    [ -n "$ADDR" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "daemon died at startup:" >&2; cat "$LOG" >&2; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "daemon never announced its address" >&2; cat "$LOG" >&2; exit 1; }
echo "daemon up at $ADDR"

get() { curl -sf "http://$ADDR$1"; }

get /healthz | grep -q '"ok": *true'

# Config round-trip: PUT merges, GET reflects it, bad keys are a 400.
get /config | grep -q '"arena_mb"'
curl -sf -X PUT "http://$ADDR/config" -d '{"ckpt_every": 5000}' >/dev/null
get /config | grep -q '"ckpt_every": *5000'
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X PUT "http://$ADDR/config" -d '{"bogus": 1}')
[ "$CODE" = 400 ] || { echo "bad config key returned $CODE, want 400" >&2; exit 1; }

# Submit a sweep job and poll it to completion.
JOB=$(curl -sf -X POST "http://$ADDR/jobs" -d '{"only": ["fig08"]}')
echo "$JOB" | grep -q '"state": *"running"'
ID=$(echo "$JOB" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || { echo "no job id in: $JOB" >&2; exit 1; }

for _ in $(seq 1 600); do
    STATE=$(get "/jobs/$ID" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -n1)
    [ "$STATE" = running ] || break
    sleep 1
done
[ "$STATE" = done ] || { echo "job ended as '$STATE'" >&2; get "/jobs/$ID" >&2; exit 1; }
[ -s "$WORK/jobs/$ID/results/fig08.json" ] || { echo "job produced no artifact" >&2; exit 1; }
echo "sweep job $ID done"

# The metrics scrape carries the daemon families (the text-format lint
# itself is enforced by crates/bench/tests/serve_http.rs).
METRICS=$(get /metrics)
echo "$METRICS" | grep -q '^# TYPE ascc_serve_uptime_seconds gauge$'
echo "$METRICS" | grep -q '^ascc_serve_jobs_total{state="done"} 1$'
echo "$METRICS" | grep -q '^ascc_serve_config_ckpt_every 5000$'

curl -sf -X POST "http://$ADDR/shutdown" >/dev/null
for _ in $(seq 1 100); do
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "daemon ignored /shutdown" >&2
    exit 1
fi
echo "serve smoke OK"
