#!/usr/bin/env bash
# Kill-and-resume smoke test for the fault-tolerant orchestrator.
#
# Runs `run_all --only fig08` three ways:
#   1. uninterrupted, to capture the reference results/fig08.json;
#   2. with periodic checkpoints (ASCC_CKPT_EVERY), SIGKILLed mid-run;
#   3. `--resume`, which skips manifest-done binaries and restores the
#      in-flight checkpoint.
# The resumed results must be byte-identical to the reference — the
# crash-resume invariant, end to end through the orchestrator.
#
# Usage: scripts/kill_resume_smoke.sh   (from anywhere; builds if needed)
set -euo pipefail

cd "$(dirname "$0")/.."

export ASCC_QUICK=1
RUN_ALL=target/release/run_all
if [ ! -x "$RUN_ALL" ]; then
    cargo build --release -p ascc-bench --bins
fi

SCRATCH=$(mktemp -d)
trap 'rm -rf "$SCRATCH"' EXIT

clean() {
    rm -rf results/ckpt results/fig08.json results/run_manifest.json
}

echo "== 1/3 uninterrupted reference run =="
clean
"$RUN_ALL" --only fig08
cp results/fig08.json "$SCRATCH/fig08_reference.json"

echo "== 2/3 checkpointed run, SIGKILL mid-flight =="
clean
export ASCC_CKPT_EVERY=50000
export ASCC_CKPT_DIR=results/ckpt
# Own session => own process group, so the SIGKILL takes out run_all AND
# the experiment child it spawned, exactly like an OOM-kill or a lost node.
setsid "$RUN_ALL" --only fig08 &
PID=$!
for _ in $(seq 1 1200); do
    if compgen -G "results/ckpt/*.snap" >/dev/null; then
        break
    fi
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.1
done
sleep 1 # let a few more checkpoints land mid-run
if kill -0 "$PID" 2>/dev/null; then
    kill -KILL -- "-$PID"
    wait "$PID" 2>/dev/null || true
    echo "SIGKILLed run_all (pid $PID) mid-run"
else
    wait "$PID" 2>/dev/null || true
    echo "warning: run finished before the kill; resume path degenerates to a skip" >&2
fi

echo "== 3/3 resume =="
"$RUN_ALL" --only fig08 --resume

echo "== verify =="
cmp results/fig08.json "$SCRATCH/fig08_reference.json"
grep -q '"status": "done"' results/run_manifest.json
echo "kill-and-resume smoke: PASS (fig08.json byte-identical after SIGKILL + --resume)"
